package core

import (
	"testing"

	"geoprocmap/internal/units"
)

// The BenchmarkAlloc* family gates the allocation discipline the allocsafe
// rule enforces statically: every //geolint:allocfree root must measure
// 0 allocs/op once its caches are warm. scripts/bench_alloc.sh runs them
// with -benchmem and fails on any nonzero allocs/op.

var (
	benchCost  units.Cost
	benchPlace Placement
	benchBool  bool
)

// benchAllocProblem returns a prewarmed clustered problem and a valid
// placement, so the measured loops hit only cached adjacency views.
func benchAllocProblem(b *testing.B) (*Problem, Placement) {
	b.Helper()
	p := clusteredProblem(64, 4, 11)
	p.Comm.Prewarm()
	pl := make(Placement, p.N())
	for i := range pl {
		pl[i] = i % p.M()
	}
	return p, pl
}

func BenchmarkAllocCost(b *testing.B) {
	p, pl := benchAllocProblem(b)
	benchCost = p.Cost(pl) // warm any remaining lazy state
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchCost = p.Cost(pl)
	}
}

func BenchmarkAllocCostParts(b *testing.B) {
	p, pl := benchAllocProblem(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lat, bw := p.CostParts(pl)
		benchCost = lat + bw
	}
}

func BenchmarkAllocExchangeDelta(b *testing.B) {
	p, pl := benchAllocProblem(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchCost = exchangeDelta(p, pl, i%p.N(), (i+7)%p.N())
	}
}

func BenchmarkAllocRefinePass(b *testing.B) {
	p, pl := benchAllocProblem(b)
	base := append(Placement(nil), pl...)
	scratch := make(Placement, len(pl))
	baseCost := p.Cost(base)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(scratch, base)
		cost := baseCost
		benchBool = refinePass(p, scratch, &cost)
	}
}

func BenchmarkAllocFill(b *testing.B) {
	p, _ := benchAllocProblem(b)
	h := newHeuristicState(p)
	ordered := [][]int{{0}, {1}, {2}, {3}}
	benchPlace = h.fill(ordered) // warm members to their high-water mark
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchPlace = h.fill(ordered)
	}
}
