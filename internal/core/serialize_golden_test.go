package core

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"geoprocmap/internal/comm"
	"geoprocmap/internal/geo"
	"geoprocmap/internal/mat"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenProblem is a small hand-built instance that exercises every
// serialized feature: asymmetric traffic, a pinned process, a
// restricted Allowed set, and uneven capacities.
func goldenProblem(t *testing.T) *Problem {
	t.Helper()
	g := comm.NewGraph(6)
	g.AddTraffic(0, 1, 1024, 8)
	g.AddTraffic(1, 0, 512, 4) // asymmetric reverse direction
	g.AddTraffic(0, 2, 2048, 2)
	g.AddTraffic(3, 4, 4096, 16)
	g.AddTraffic(5, 0, 256, 1)
	p := &Problem{
		Comm: g,
		LT: mat.MustFrom([][]float64{
			{0.0005, 0.08, 0.15},
			{0.08, 0.0005, 0.11},
			{0.15, 0.11, 0.0005},
		}),
		BT: mat.MustFrom([][]float64{
			{1e9, 5e7, 2.5e7},
			{5e7, 1e9, 4e7},
			{2.5e7, 4e7, 1e9},
		}),
		PC:         []geo.LatLon{{Lat: 38.13, Lon: -78.45}, {Lat: 53.35, Lon: -6.26}, {Lat: 35.41, Lon: 139.42}},
		Capacity:   []int{3, 2, 2},
		Constraint: mat.IntVec{2, Unconstrained, Unconstrained, Unconstrained, Unconstrained, Unconstrained},
		Allowed:    [][]int{nil, {0, 1}, nil, nil, nil, nil},
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	return p
}

// TestProblemJSONGolden locks the on-disk problem format: the checked-in
// golden file must decode to the expected instance, and re-encoding that
// instance must reproduce the file byte for byte. A format change that
// would silently orphan saved problem files fails here first.
func TestProblemJSONGolden(t *testing.T) {
	golden := filepath.Join("testdata", "problem.golden.json")
	if *update {
		var buf bytes.Buffer
		if err := goldenProblem(t).WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	data, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}

	p, err := ReadJSON(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if p.N() != 6 || p.M() != 3 {
		t.Fatalf("decoded %d×%d, want 6×3", p.N(), p.M())
	}
	if p.Constraint[0] != 2 || p.Constraint[1] != Unconstrained {
		t.Errorf("pins lost: constraint = %v", p.Constraint)
	}
	if len(p.Allowed[1]) != 2 || p.Allowed[1][0] != 0 || p.Allowed[1][1] != 1 {
		t.Errorf("allowed set lost: %v", p.Allowed[1])
	}
	if p.Capacity[0] != 3 || p.Capacity[1] != 2 || p.Capacity[2] != 2 {
		t.Errorf("capacities lost: %v", p.Capacity)
	}
	if got := p.Comm.Volume(0, 1); got != 1024 {
		t.Errorf("edge (0,1) volume = %g, want 1024", got)
	}
	if got := p.Comm.Volume(1, 0); got != 512 {
		t.Errorf("asymmetric edge (1,0) volume = %g, want 512", got)
	}
	if p.LT.At(0, 2) != 0.15 || p.BT.At(2, 0) != 2.5e7 {
		t.Error("network matrices lost")
	}
	if p.PC[2].Lon != 139.42 {
		t.Errorf("site coordinates lost: %v", p.PC)
	}

	// Decode → re-encode must be byte-identical: WriteJSON's edge order
	// (ascending src, then dst) and indentation are part of the format.
	var buf bytes.Buffer
	if err := p.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), data) {
		t.Errorf("re-encoded problem differs from golden file\ngot:\n%s\nwant:\n%s", buf.Bytes(), data)
	}

	// And so must the in-memory instance it was generated from.
	var fresh bytes.Buffer
	if err := goldenProblem(t).WriteJSON(&fresh); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fresh.Bytes(), data) {
		t.Error("goldenProblem no longer matches the checked-in file; run with -update if the change is intentional")
	}
}

// TestPlacementJSONGolden locks the placement format the same way.
func TestPlacementJSONGolden(t *testing.T) {
	golden := filepath.Join("testdata", "placement.golden.json")
	pl := Placement{2, 0, 0, 1, 1, 2}
	if *update {
		var buf bytes.Buffer
		if err := WritePlacementJSON(&buf, "Geo-distributed", 3.25, pl); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	data, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	algo, cost, got, err := ReadPlacementJSON(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if algo != "Geo-distributed" || cost != 3.25 || !got.Equal(pl) {
		t.Errorf("decoded %q %g %v", algo, cost, got)
	}
	var buf bytes.Buffer
	if err := WritePlacementJSON(&buf, algo, cost, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), data) {
		t.Errorf("re-encoded placement differs from golden file\ngot:\n%s\nwant:\n%s", buf.Bytes(), data)
	}
}
