package core

import (
	"testing"
	"testing/quick"

	"geoprocmap/internal/mat"
	"geoprocmap/internal/stats"
)

func TestRandomPlacementFeasible(t *testing.T) {
	p := twoSiteProblem()
	p.Constraint[2] = 1
	rng := stats.NewRand(1)
	for i := 0; i < 100; i++ {
		pl, err := RandomPlacement(p, rng)
		if err != nil {
			t.Fatal(err)
		}
		if err := p.CheckPlacement(pl); err != nil {
			t.Fatalf("iteration %d: %v", i, err)
		}
		if pl[2] != 1 {
			t.Fatal("constraint ignored")
		}
	}
}

func TestRandomPlacementCoversSolutionSpace(t *testing.T) {
	p := twoSiteProblem()
	rng := stats.NewRand(2)
	seen := map[string]bool{}
	for i := 0; i < 200; i++ {
		pl, err := RandomPlacement(p, rng)
		if err != nil {
			t.Fatal(err)
		}
		key := ""
		for _, s := range pl {
			key += string(rune('0' + s))
		}
		seen[key] = true
	}
	// 4 processes over 2 sites with capacity 2 → C(4,2) = 6 placements.
	if len(seen) != 6 {
		t.Errorf("sampled %d distinct placements, want all 6", len(seen))
	}
}

func TestRandomPlacementNilRNG(t *testing.T) {
	if _, err := RandomPlacement(twoSiteProblem(), nil); err == nil {
		t.Error("nil rng accepted")
	}
}

func TestRandomPlacementOverfullConstraints(t *testing.T) {
	p := twoSiteProblem()
	p.Constraint = mat.IntVec{0, 0, 0, Unconstrained} // capacity of site 0 is 2
	if _, err := RandomPlacement(p, stats.NewRand(1)); err == nil {
		t.Error("overfull constraints accepted")
	}
}

// Property: RandomPlacement output is always feasible for valid problems.
func TestQuickRandomPlacementFeasible(t *testing.T) {
	f := func(seed int64, nRaw, mRaw uint8) bool {
		n := int(nRaw%20) + 2
		m := int(mRaw%5) + 1
		p := clusteredProblem(n, m, seed)
		pl, err := RandomPlacement(p, stats.NewRand(seed))
		if err != nil {
			return false
		}
		return p.CheckPlacement(pl) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
