package core

import (
	"fmt"

	"geoprocmap/internal/comm"
	"geoprocmap/internal/geo"
	"geoprocmap/internal/mat"
)

// HierarchicalGeoMapper implements the recursive form of the paper's
// grouping optimization: "we utilize our algorithm on the new groups and
// recursively apply the proposed algorithm inside each group"
// (Section 4.2). Sites are clustered into κ groups; the groups are treated
// as super-sites and processes are mapped to groups with Algorithm 1; then
// each group's subproblem (its processes over its member sites) is solved
// the same way, recursing until a group is small enough to handle flat.
//
// Compared to the flat GeoMapper — which orders groups but fills the sites
// inside a group only by remaining capacity — the recursion also optimizes
// *which site within a group* each process lands on, which matters once
// deployments grow past a handful of sites.
type HierarchicalGeoMapper struct {
	// Kappa is the group count per level (default 4, max MaxKappa).
	Kappa int
	// Seed drives the K-means initializations at every level.
	Seed int64
	// LeafSites is the largest site count solved flat (default 5, the κ
	// bound the paper recommends).
	LeafSites int
	// Workers is the per-level order-search parallelism, forwarded to
	// every flat GeoMapper the recursion instantiates (0 = GOMAXPROCS,
	// 1 = serial).
	Workers int
}

// Name implements Mapper.
func (h *HierarchicalGeoMapper) Name() string { return "Geo-hierarchical" }

// Map implements Mapper.
//
//geolint:deterministic
func (h *HierarchicalGeoMapper) Map(p *Problem) (Placement, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	kappa := h.Kappa
	if kappa == 0 {
		kappa = 4
	}
	if kappa < 2 || kappa > MaxKappa {
		return nil, fmt.Errorf("core: hierarchical kappa = %d outside [2,%d]", kappa, MaxKappa)
	}
	leaf := h.LeafSites
	if leaf == 0 {
		leaf = 5
	}
	if leaf < 1 {
		return nil, fmt.Errorf("core: LeafSites = %d, want >= 1", leaf)
	}
	return h.mapLevel(p, kappa, leaf, h.Seed)
}

func (h *HierarchicalGeoMapper) mapLevel(p *Problem, kappa, leaf int, seed int64) (Placement, error) {
	if p.M() <= leaf {
		flat := &GeoMapper{Kappa: min(kappa, p.M()), Seed: seed, Workers: h.Workers}
		return flat.Map(p)
	}
	groups, err := GroupSites(p.PC, kappa, seed)
	if err != nil {
		return nil, err
	}
	if len(groups) < 2 {
		// Clustering failed to split (e.g. identical coordinates); fall
		// back to the flat algorithm, whose grouped order search still
		// works for any M.
		flat := &GeoMapper{Kappa: kappa, Seed: seed, Workers: h.Workers}
		return flat.Map(p)
	}

	super, err := buildSuperProblem(p, groups)
	if err != nil {
		return nil, err
	}
	flat := &GeoMapper{Kappa: min(kappa, len(groups)), Seed: seed, Workers: h.Workers}
	groupOf, err := flat.Map(super)
	if err != nil {
		return nil, err
	}

	// Solve each group's subproblem recursively.
	out := make(Placement, p.N())
	for gi, members := range groups {
		var procs []int
		for i, g := range groupOf {
			if g == gi {
				procs = append(procs, i)
			}
		}
		if len(procs) == 0 {
			continue
		}
		sub, err := buildSubProblem(p, procs, members)
		if err != nil || sub.Validate() != nil {
			// The group-level assignment can violate a within-group
			// allowed-set Hall condition; retreat to the flat algorithm on
			// the whole instance, which handles it via repair.
			fallback := &GeoMapper{Kappa: kappa, Seed: seed, Workers: h.Workers}
			return fallback.Map(p)
		}
		subPl, err := h.mapLevel(sub, kappa, leaf, seed+int64(gi)+1)
		if err != nil {
			return nil, err
		}
		for local, proc := range procs {
			out[proc] = members[subPl[local]]
		}
	}
	if err := p.CheckPlacement(out); err != nil {
		return nil, fmt.Errorf("core: hierarchical mapping produced infeasible placement: %w", err)
	}
	return out, nil
}

// buildSuperProblem aggregates sites into group-level super-sites: summed
// capacities, mean pairwise latency/bandwidth, centroid coordinates, and
// group-projected constraints.
func buildSuperProblem(p *Problem, groups [][]int) (*Problem, error) {
	m := p.M()
	k := len(groups)
	siteGroup := make([]int, m)
	for gi, members := range groups {
		for _, s := range members {
			siteGroup[s] = gi
		}
	}
	lt := mat.NewSquare(k)
	bt := mat.NewSquare(k)
	pc := make([]geo.LatLon, k)
	capacity := make(mat.IntVec, k)
	for a := 0; a < k; a++ {
		var lat, lon float64
		for _, s := range groups[a] {
			capacity[a] += p.Capacity[s]
			lat += p.PC[s].Lat
			lon += p.PC[s].Lon
		}
		pc[a] = geo.LatLon{Lat: lat / float64(len(groups[a])), Lon: lon / float64(len(groups[a]))}
		for b := 0; b < k; b++ {
			var latSum, bwSum float64
			pairs := 0
			for _, sa := range groups[a] {
				for _, sb := range groups[b] {
					latSum += p.LT.At(sa, sb)
					bwSum += p.BT.At(sa, sb)
					pairs++
				}
			}
			lt.Set(a, b, latSum/float64(pairs))
			bt.Set(a, b, bwSum/float64(pairs))
		}
	}
	constraint := make(mat.IntVec, p.N())
	var allowed [][]int
	if p.HasSiteSets() {
		allowed = make([][]int, p.N())
	}
	for i := range constraint {
		if c := p.Constraint[i]; c != Unconstrained {
			constraint[i] = siteGroup[c]
		} else {
			constraint[i] = Unconstrained
		}
		if allowed != nil && len(p.Allowed[i]) > 0 {
			seen := map[int]bool{}
			for _, s := range p.Allowed[i] {
				g := siteGroup[s]
				if !seen[g] {
					seen[g] = true
					allowed[i] = append(allowed[i], g)
				}
			}
		}
	}
	super := &Problem{
		Comm:       p.Comm,
		LT:         lt,
		BT:         bt,
		PC:         pc,
		Capacity:   capacity,
		Constraint: constraint,
		Allowed:    allowed,
	}
	if err := super.Validate(); err != nil {
		return nil, fmt.Errorf("core: group-level problem invalid: %w", err)
	}
	return super, nil
}

// buildSubProblem restricts the instance to one group: the given processes
// over the given member sites, with the communication pattern projected
// onto the kept processes (traffic to processes outside the group is
// dropped — their placement is already fixed at the group level, and the
// sub-decision cannot change inter-group link choices under the mean-link
// model).
func buildSubProblem(p *Problem, procs, members []int) (*Problem, error) {
	localProc := make(map[int]int, len(procs))
	for li, pi := range procs {
		localProc[pi] = li
	}
	localSite := make(map[int]int, len(members))
	for li, s := range members {
		localSite[s] = li
	}
	sub := &Problem{
		Comm:       projectGraph(p, procs, localProc),
		LT:         submatrix(p.LT, members),
		BT:         submatrix(p.BT, members),
		PC:         make([]geo.LatLon, len(members)),
		Capacity:   make(mat.IntVec, len(members)),
		Constraint: make(mat.IntVec, len(procs)),
	}
	for li, s := range members {
		sub.PC[li] = p.PC[s]
		sub.Capacity[li] = p.Capacity[s]
	}
	var allowed [][]int
	for li, pi := range procs {
		if c := p.Constraint[pi]; c != Unconstrained {
			ls, ok := localSite[c]
			if !ok {
				return nil, fmt.Errorf("core: process %d pinned outside its group", pi)
			}
			sub.Constraint[li] = ls
		} else {
			sub.Constraint[li] = Unconstrained
		}
		if p.HasSiteSets() && len(p.Allowed[pi]) > 0 {
			var local []int
			for _, s := range p.Allowed[pi] {
				if ls, ok := localSite[s]; ok {
					local = append(local, ls)
				}
			}
			if len(local) == 0 {
				return nil, fmt.Errorf("core: process %d has no admissible site in its group", pi)
			}
			if allowed == nil {
				allowed = make([][]int, len(procs))
			}
			allowed[li] = local
		}
	}
	sub.Allowed = allowed
	return sub, nil
}

func submatrix(m *mat.Matrix, idx []int) *mat.Matrix {
	out := mat.NewSquare(len(idx))
	for a, ia := range idx {
		for b, ib := range idx {
			out.Set(a, b, m.At(ia, ib))
		}
	}
	return out
}

// projectGraph keeps only traffic among the chosen processes.
func projectGraph(p *Problem, procs []int, localProc map[int]int) *commGraphAlias {
	g := newCommGraph(len(procs))
	for li, pi := range procs {
		for _, e := range p.Comm.Outgoing(pi) {
			if lj, ok := localProc[e.Peer]; ok {
				g.AddTraffic(li, lj, e.Volume, e.Msgs)
			}
		}
		_ = li
	}
	return g
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// commGraphAlias keeps the comm import local to this file's helpers.
type commGraphAlias = comm.Graph

func newCommGraph(n int) *commGraphAlias { return comm.NewGraph(n) }
