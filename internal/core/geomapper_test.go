package core

import (
	"math"
	"testing"
	"testing/quick"

	"geoprocmap/internal/comm"
	"geoprocmap/internal/geo"
	"geoprocmap/internal/mat"
	"geoprocmap/internal/stats"
)

// bruteForce enumerates every feasible placement of a small problem and
// returns the minimum cost.
func bruteForce(p *Problem) float64 {
	n, m := p.N(), p.M()
	pl := make(Placement, n)
	best := math.Inf(1)
	var rec func(i int)
	rec = func(i int) {
		if i == n {
			if p.CheckPlacement(pl) == nil {
				if c := p.Cost(pl).Float(); c < best {
					best = c
				}
			}
			return
		}
		for s := 0; s < m; s++ {
			pl[i] = s
			rec(i + 1)
		}
	}
	rec(0)
	return best
}

func TestGeoMapperFindsObviousColocation(t *testing.T) {
	p := twoSiteProblem()
	gm := &GeoMapper{Kappa: 2, Seed: 1}
	pl, err := gm.Map(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.CheckPlacement(pl); err != nil {
		t.Fatalf("infeasible placement: %v", err)
	}
	// The heavy pairs (0,1) and (2,3) must be colocated.
	if pl[0] != pl[1] || pl[2] != pl[3] {
		t.Errorf("heavy pairs split: %v", pl)
	}
	opt := bruteForce(p)
	if got := p.Cost(pl).Float(); math.Abs(got-opt) > 1e-9 {
		t.Errorf("cost %v, brute-force optimum %v", got, opt)
	}
}

// clusteredProblem builds N processes in N/4 heavy cliques over M sites
// placed on a line, so good mappings must pack cliques within sites.
func clusteredProblem(n, m int, seed int64) *Problem {
	rng := stats.NewRand(seed)
	g := comm.NewGraph(n)
	cliqueSize := 4
	for c := 0; c < n/cliqueSize; c++ {
		base := c * cliqueSize
		for i := 0; i < cliqueSize; i++ {
			for j := i + 1; j < cliqueSize; j++ {
				vol := 1e6 * (1 + rng.Float64())
				g.AddTraffic(base+i, base+j, vol, 10)
				g.AddTraffic(base+j, base+i, vol/2, 5)
			}
		}
		// Light inter-clique traffic.
		if c > 0 {
			g.AddTraffic(base, base-1, 1e3, 1)
		}
	}
	lt := mat.NewSquare(m)
	bt := mat.NewSquare(m)
	pc := make([]geo.LatLon, m)
	for k := 0; k < m; k++ {
		pc[k] = geo.LatLon{Lat: 0, Lon: float64(k) * 30}
		for l := 0; l < m; l++ {
			if k == l {
				lt.Set(k, l, 0.001)
				bt.Set(k, l, 100e6)
			} else {
				d := math.Abs(float64(k - l))
				lt.Set(k, l, 0.05*d)
				bt.Set(k, l, 20e6/d)
			}
		}
	}
	return &Problem{
		Comm:       g,
		LT:         lt,
		BT:         bt,
		PC:         pc,
		Capacity:   mat.NewIntVec(m, (n+m-1)/m),
		Constraint: mat.NewIntVec(n, Unconstrained),
	}
}

func TestGeoMapperBeatsRandomOnCliques(t *testing.T) {
	p := clusteredProblem(32, 4, 7)
	gm := &GeoMapper{Kappa: 4, Seed: 1}
	pl, err := gm.Map(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.CheckPlacement(pl); err != nil {
		t.Fatal(err)
	}
	geoCost := p.Cost(pl).Float()
	rng := stats.NewRand(99)
	var randCosts []float64
	for i := 0; i < 50; i++ {
		rp, err := RandomPlacement(p, rng)
		if err != nil {
			t.Fatal(err)
		}
		randCosts = append(randCosts, p.Cost(rp).Float())
	}
	if mean := stats.Mean(randCosts); geoCost > mean*0.6 {
		t.Errorf("geo cost %v not clearly below random mean %v", geoCost, mean)
	}
	if min := stats.Min(randCosts); geoCost > min {
		t.Errorf("geo cost %v worse than best of 50 random (%v)", geoCost, min)
	}
}

func TestGeoMapperHonorsConstraints(t *testing.T) {
	p := clusteredProblem(16, 4, 3)
	p.Constraint[0] = 3
	p.Constraint[5] = 1
	p.Constraint[6] = 1
	gm := &GeoMapper{Kappa: 3, Seed: 2}
	pl, err := gm.Map(p)
	if err != nil {
		t.Fatal(err)
	}
	if pl[0] != 3 || pl[5] != 1 || pl[6] != 1 {
		t.Errorf("constraints violated: %v", pl)
	}
	if err := p.CheckPlacement(pl); err != nil {
		t.Fatal(err)
	}
}

func TestGeoMapperFullyConstrained(t *testing.T) {
	p := twoSiteProblem()
	p.Constraint = mat.IntVec{1, 0, 1, 0}
	pl, err := (&GeoMapper{Kappa: 2}).Map(p)
	if err != nil {
		t.Fatal(err)
	}
	if !pl.Equal(mat.IntVec{1, 0, 1, 0}) {
		t.Errorf("fully constrained placement = %v, want the constraint vector", pl)
	}
}

func TestGeoMapperDeterminism(t *testing.T) {
	p := clusteredProblem(24, 3, 5)
	a, err := (&GeoMapper{Kappa: 3, Seed: 11}).Map(p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := (&GeoMapper{Kappa: 3, Seed: 11}).Map(p)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Equal(b) {
		t.Error("same seed produced different placements")
	}
}

func TestGeoMapperKappaValidation(t *testing.T) {
	p := twoSiteProblem()
	if _, err := (&GeoMapper{Kappa: -1}).Map(p); err == nil {
		t.Error("negative kappa accepted")
	}
	if _, err := (&GeoMapper{Kappa: MaxKappa + 1}).Map(p); err == nil {
		t.Error("kappa above MaxKappa accepted")
	}
	// Kappa larger than M clamps rather than failing.
	if _, err := (&GeoMapper{Kappa: MaxKappa}).Map(p); err != nil {
		t.Errorf("kappa > M should clamp, got %v", err)
	}
}

func TestGeoMapperDisableGrouping(t *testing.T) {
	p := clusteredProblem(16, 4, 2)
	pl, err := (&GeoMapper{Kappa: 4, DisableGrouping: true}).Map(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.CheckPlacement(pl); err != nil {
		t.Fatal(err)
	}
	// With many sites and no grouping the order search must be refused.
	big := clusteredProblem(20, 10, 2)
	if _, err := (&GeoMapper{Kappa: 4, DisableGrouping: true}).Map(big); err == nil {
		t.Error("ungrouped M=10 order search accepted")
	}
}

func TestGeoMapperSingleOrderAndMaxOrders(t *testing.T) {
	p := clusteredProblem(16, 4, 2)
	single, err := (&GeoMapper{Kappa: 4, SingleOrder: true}).Map(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.CheckPlacement(single); err != nil {
		t.Fatal(err)
	}
	capped, err := (&GeoMapper{Kappa: 4, MaxOrders: 1}).Map(p)
	if err != nil {
		t.Fatal(err)
	}
	full, err := (&GeoMapper{Kappa: 4}).Map(p)
	if err != nil {
		t.Fatal(err)
	}
	if p.Cost(full) > p.Cost(capped)+1e-9 {
		t.Error("full order search worse than capped search")
	}
	if p.Cost(full) > p.Cost(single)+1e-9 {
		t.Error("full order search worse than single order")
	}
}

func TestGeoMapperInvalidProblem(t *testing.T) {
	p := twoSiteProblem()
	p.Capacity[0] = 0
	if _, err := (&GeoMapper{}).Map(p); err == nil {
		t.Error("invalid problem accepted")
	}
}

// Property: on random problems the geo mapper always produces feasible
// placements and never loses to the mean of random placements.
func TestQuickGeoMapperFeasibleAndCompetitive(t *testing.T) {
	f := func(seed int64, nRaw, mRaw uint8) bool {
		// n ≥ 8: on 4-process instances the greedy packing is a max-weight
		// matching heuristic that adversarial volumes can push below the
		// random mean, which is expected (the paper's setting is n ≫ m).
		n := int(nRaw%24) + 8
		m := int(mRaw%4) + 2
		p := clusteredProblem(n, m, seed)
		// Pin ~20% of processes, round-robin across sites.
		for i := 0; i < n/5; i++ {
			p.Constraint[i*5%n] = i % m
		}
		if p.Validate() != nil {
			return true // capacity collision from pinning; skip
		}
		pl, err := (&GeoMapper{Kappa: 3, Seed: seed}).Map(p)
		if err != nil {
			return false
		}
		if p.CheckPlacement(pl) != nil {
			return false
		}
		rng := stats.NewRand(seed + 1)
		var costs []float64
		for i := 0; i < 20; i++ {
			rp, err := RandomPlacement(p, rng)
			if err != nil {
				return false
			}
			costs = append(costs, p.Cost(rp).Float())
		}
		return p.Cost(pl).Float() <= stats.Mean(costs)*1.02+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: the geo mapper is within a small factor of the brute-force
// optimum on tiny instances.
func TestQuickGeoMapperNearOptimal(t *testing.T) {
	f := func(seed int64) bool {
		p := clusteredProblem(8, 2, seed)
		pl, err := (&GeoMapper{Kappa: 2, Seed: seed}).Map(p)
		if err != nil {
			return false
		}
		opt := bruteForce(p)
		return p.Cost(pl).Float() <= opt*1.25+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

func TestGeoMapperRefineNeverWorse(t *testing.T) {
	p := clusteredProblem(32, 4, 13)
	p.Constraint[2] = 1
	p.Constraint[9] = 3
	plain, err := (&GeoMapper{Kappa: 4, Seed: 1}).Map(p)
	if err != nil {
		t.Fatal(err)
	}
	refined, err := (&GeoMapper{Kappa: 4, Seed: 1, RefinePasses: 10}).Map(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.CheckPlacement(refined); err != nil {
		t.Fatalf("refined placement infeasible: %v", err)
	}
	if p.Cost(refined) > p.Cost(plain)+1e-9 {
		t.Errorf("refinement made the placement worse: %v vs %v", p.Cost(refined), p.Cost(plain))
	}
}

func TestExchangeDeltaMatchesRecomputation(t *testing.T) {
	p := clusteredProblem(16, 4, 17)
	pl, err := RandomPlacement(p, stats.NewRand(3))
	if err != nil {
		t.Fatal(err)
	}
	for a := 0; a < p.N(); a++ {
		for b := a + 1; b < p.N(); b++ {
			if pl[a] == pl[b] {
				continue
			}
			sw := pl.Clone()
			sw[a], sw[b] = sw[b], sw[a]
			want := p.Cost(sw) - p.Cost(pl)
			if got := exchangeDelta(p, pl, a, b); math.Abs((got - want).Float()) > 1e-9 {
				t.Fatalf("exchangeDelta(%d,%d) = %v, want %v", a, b, got, want)
			}
		}
	}
}

func TestRefinePassReachesLocalOptimum(t *testing.T) {
	p := clusteredProblem(20, 4, 19)
	pl, err := (&GeoMapper{Kappa: 4, Seed: 1, RefinePasses: 100}).Map(p)
	if err != nil {
		t.Fatal(err)
	}
	base := p.Cost(pl)
	for a := 0; a < p.N(); a++ {
		for b := a + 1; b < p.N(); b++ {
			if pl[a] == pl[b] {
				continue
			}
			sw := pl.Clone()
			sw[a], sw[b] = sw[b], sw[a]
			if p.Cost(sw) < base-1e-9 {
				t.Fatalf("exchange (%d,%d) still improves after refinement", a, b)
			}
		}
	}
}
