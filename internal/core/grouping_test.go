package core

import (
	"testing"
	"testing/quick"

	"geoprocmap/internal/geo"
)

func paperPC() []geo.LatLon {
	names := []string{"us-east-1", "us-west-1", "ap-southeast-1", "eu-west-1"}
	out := make([]geo.LatLon, len(names))
	for i, n := range names {
		out[i] = geo.MustRegion(geo.EC2Regions, n).Location
	}
	return out
}

func TestGroupSitesPartition(t *testing.T) {
	pc := paperPC()
	groups, err := GroupSites(pc, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for _, g := range groups {
		if len(g) == 0 {
			t.Error("empty group returned")
		}
		for _, s := range g {
			if seen[s] {
				t.Errorf("site %d in multiple groups", s)
			}
			seen[s] = true
		}
	}
	if len(seen) != len(pc) {
		t.Errorf("groups cover %d sites, want %d", len(seen), len(pc))
	}
}

// With κ=3 over {US-East, US-West, Singapore, Ireland}, Forgy picks three
// of the four sites as initial centroids and the leftover joins its nearest
// neighbor. Singapore must therefore never group with a US site, and some
// seeds must group US East with US West (the two closest sites).
func TestGroupSitesGeographicSanity(t *testing.T) {
	pc := paperPC()
	usTogether := 0
	for seed := int64(0); seed < 10; seed++ {
		groups, err := GroupSites(pc, 3, seed)
		if err != nil {
			t.Fatal(err)
		}
		for _, g := range groups {
			hasEast, hasWest, hasSG := false, false, false
			for _, s := range g {
				switch s {
				case 0:
					hasEast = true
				case 1:
					hasWest = true
				case 2:
					hasSG = true
				}
			}
			if hasSG && (hasEast || hasWest) {
				t.Errorf("seed %d: Singapore grouped with a US site: %v", seed, groups)
			}
			if hasEast && hasWest {
				usTogether++
			}
		}
	}
	if usTogether == 0 {
		t.Error("US East/West never grouped together across 10 seeds")
	}
}

func TestGroupSitesKappaClamp(t *testing.T) {
	pc := paperPC()
	groups, err := GroupSites(pc, 99, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) > len(pc) {
		t.Errorf("%d groups for %d sites", len(groups), len(pc))
	}
}

func TestGroupSitesErrors(t *testing.T) {
	if _, err := GroupSites(nil, 2, 1); err == nil {
		t.Error("empty PC accepted")
	}
	if _, err := GroupSites(paperPC(), 0, 1); err == nil {
		t.Error("kappa=0 accepted")
	}
}

// Property: GroupSites always returns a partition of the site set.
func TestQuickGroupSitesPartition(t *testing.T) {
	f := func(seed int64, mRaw, kRaw uint8) bool {
		m := int(mRaw%12) + 1
		kappa := int(kRaw%6) + 1
		rng := seed
		pc := make([]geo.LatLon, m)
		for i := range pc {
			rng = rng*6364136223846793005 + 1442695040888963407
			pc[i] = geo.LatLon{
				Lat: float64(rng%180000)/1000 - 90,
				Lon: float64((rng/7)%360000)/1000 - 180,
			}
		}
		groups, err := GroupSites(pc, kappa, seed)
		if err != nil {
			return false
		}
		seen := make(map[int]bool)
		for _, g := range groups {
			if len(g) == 0 {
				return false
			}
			for _, s := range g {
				if s < 0 || s >= m || seen[s] {
					return false
				}
				seen[s] = true
			}
		}
		return len(seen) == m
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
