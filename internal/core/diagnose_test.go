package core

import (
	"math"
	"strings"
	"testing"

	"geoprocmap/internal/stats"
)

func TestDiagnoseBasics(t *testing.T) {
	p := twoSiteProblem()
	st, err := p.Diagnose(Placement{0, 0, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if st.Load[0] != 2 || st.Load[1] != 2 {
		t.Errorf("loads = %v", st.Load)
	}
	// Edges: (0,1)=1e6 intra site 0; (2,3)=1e6 intra site 1; (0,2)=1e3 cross.
	if st.IntraVolume != 2e6 {
		t.Errorf("intra = %v, want 2e6", st.IntraVolume)
	}
	if st.CrossVolume != 1e3 || st.CrossMsgs != 1 {
		t.Errorf("cross = %v/%v, want 1e3/1", st.CrossVolume, st.CrossMsgs)
	}
	if got := st.SiteTraffic.At(0, 1); got != 1e3 {
		t.Errorf("SiteTraffic(0,1) = %v", got)
	}
	if math.Abs((st.Cost - p.Cost(Placement{0, 0, 1, 1})).Float()) > 1e-12 {
		t.Error("cost mismatch")
	}
	wantFrac := 1e3 / (2e6 + 1e3)
	if math.Abs(st.CrossFraction()-wantFrac) > 1e-12 {
		t.Errorf("CrossFraction = %v, want %v", st.CrossFraction(), wantFrac)
	}
}

func TestDiagnoseRejectsInfeasible(t *testing.T) {
	p := twoSiteProblem()
	if _, err := p.Diagnose(Placement{0, 0, 0, 1}); err == nil {
		t.Error("overfull placement accepted")
	}
}

func TestTopWANFlows(t *testing.T) {
	p := clusteredProblem(16, 4, 3)
	pl, err := RandomPlacement(p, stats.NewRand(7))
	if err != nil {
		t.Fatal(err)
	}
	st, err := p.Diagnose(pl)
	if err != nil {
		t.Fatal(err)
	}
	flows := st.TopWANFlows(5)
	for i := 1; i < len(flows); i++ {
		if flows[i][2] > flows[i-1][2] {
			t.Fatalf("flows not sorted: %v", flows)
		}
	}
	// Asking for more flows than exist is clamped.
	if got := st.TopWANFlows(1000); len(got) > 12 {
		t.Errorf("too many flows: %d", len(got))
	}
	if !strings.Contains(st.String(), "cross-WAN volume") {
		t.Error("String output malformed")
	}
}

func TestDiagnoseAllIntra(t *testing.T) {
	p := twoSiteProblem()
	// Remove the cross edge's influence by placing its endpoints together.
	st, err := p.Diagnose(Placement{0, 0, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if st.CrossFraction() >= 1 {
		t.Error("cross fraction should be small")
	}
	empty := &PlacementStats{SiteTraffic: st.SiteTraffic}
	if empty.CrossFraction() != 0 {
		t.Error("zero-traffic CrossFraction should be 0")
	}
}
