package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"geoprocmap/internal/faults"
)

// newTestServer builds a service over the paper's 4-site cloud with
// 16 nodes per site.
func newTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	st, err := NewStore(testSnapshot(t, 64, 1))
	if err != nil {
		t.Fatal(err)
	}
	cfg.Store = st
	srv, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	return srv
}

// postMap sends a MapRequest and decodes the response body into out.
func postMap(t *testing.T, h http.Handler, req MapRequest, wantStatus int, out any) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("POST", "/v1/map", bytes.NewReader(body)))
	if rec.Code != wantStatus {
		t.Fatalf("status = %d, want %d (body %s)", rec.Code, wantStatus, rec.Body.String())
	}
	if out != nil {
		if err := json.Unmarshal(rec.Body.Bytes(), out); err != nil {
			t.Fatalf("decoding response: %v (body %s)", err, rec.Body.String())
		}
	}
}

func TestMapSolveAndCacheHit(t *testing.T) {
	srv := newTestServer(t, Config{})
	h := srv.Handler()
	req := MapRequest{Workload: "LU", Procs: 64, Seed: 1}

	var first MapResponse
	postMap(t, h, req, http.StatusOK, &first)
	if first.Cached {
		t.Error("first request reported cached")
	}
	if first.SnapshotVersion != 1 {
		t.Errorf("snapshot version = %d, want 1", first.SnapshotVersion)
	}
	if len(first.Placement) != 64 || first.Digest == "" || first.Cost <= 0 {
		t.Fatalf("implausible result: %d procs, digest %q, cost %g", len(first.Placement), first.Digest, first.Cost)
	}
	if first.Algorithm != "Geo-distributed" {
		t.Errorf("algorithm = %q", first.Algorithm)
	}

	var second MapResponse
	postMap(t, h, req, http.StatusOK, &second)
	if !second.Cached {
		t.Error("identical request missed the cache")
	}
	if second.Digest != first.Digest || second.SnapshotVersion != first.SnapshotVersion {
		t.Error("cached result differs from the original")
	}

	view := srv.metrics.Snapshot(0, 0)
	if view.CacheHits != 1 || view.Solves != 1 || view.Requests != 2 {
		t.Errorf("metrics = %+v, want 1 hit / 1 solve / 2 requests", view)
	}
}

func TestMapDeterministicAcrossServers(t *testing.T) {
	req := MapRequest{Workload: "LU", Procs: 64, Seed: 7, Kappa: 3}
	digests := make([]string, 2)
	for i := range digests {
		srv := newTestServer(t, Config{})
		var resp MapResponse
		postMap(t, srv.Handler(), req, http.StatusOK, &resp)
		digests[i] = resp.Digest
	}
	if digests[0] != digests[1] {
		t.Errorf("same request on fresh servers produced %s vs %s", digests[0], digests[1])
	}
}

// TestMapMultilevelAlgorithm exercises the multilevel mapper through the
// full service path: the request validates, the solver pool hands it the
// per-solve worker budget, and — because the refiner's deterministic
// reduction is worker-count independent — servers with different
// SolverWorkers settings return identical digests.
func TestMapMultilevelAlgorithm(t *testing.T) {
	req := MapRequest{Workload: "LU", Procs: 64, Seed: 5, Algorithm: "multilevel"}
	digests := make([]string, 2)
	for i, sw := range []int{1, 2} {
		srv := newTestServer(t, Config{Workers: 1, SolverWorkers: sw})
		var resp MapResponse
		postMap(t, srv.Handler(), req, http.StatusOK, &resp)
		if resp.Algorithm != "Multilevel" {
			t.Errorf("algorithm = %q, want Multilevel", resp.Algorithm)
		}
		if len(resp.Placement) != 64 || resp.Cost <= 0 {
			t.Fatalf("implausible result: %d procs, cost %g", len(resp.Placement), resp.Cost)
		}
		digests[i] = resp.Digest
	}
	if digests[0] != digests[1] {
		t.Errorf("solver workers changed the multilevel digest: %s vs %s", digests[0], digests[1])
	}
}

func TestMapConstraintsAndExplicitEdges(t *testing.T) {
	srv := newTestServer(t, Config{})
	h := srv.Handler()
	// Pin process 0 to site 2 and restrict process 1 to sites {1, 2}.
	req := MapRequest{
		Workload:   "LU",
		Procs:      16,
		Seed:       1,
		Constraint: append([]int{2}, make([]int, 15)...),
		Allowed:    [][]int{nil, {1, 2}},
	}
	for i := 1; i < 16; i++ {
		req.Constraint[i] = -1
	}
	req.Allowed = append(req.Allowed, make([][]int, 14)...)
	var resp MapResponse
	postMap(t, h, req, http.StatusOK, &resp)
	if resp.Placement[0] != 2 {
		t.Errorf("pinned process placed at %d, want 2", resp.Placement[0])
	}
	if s := resp.Placement[1]; s != 1 && s != 2 {
		t.Errorf("restricted process placed at %d, want 1 or 2", s)
	}

	// Explicit edge list instead of a preset.
	edge := MapRequest{
		Procs: 8,
		Seed:  1,
		Edges: []Edge{{Src: 0, Dst: 1, Volume: 1e6, Msgs: 10}, {Src: 2, Dst: 3, Volume: 5e5, Msgs: 4}},
	}
	var eresp MapResponse
	postMap(t, h, edge, http.StatusOK, &eresp)
	if len(eresp.Placement) != 8 {
		t.Errorf("edge-list placement has %d entries", len(eresp.Placement))
	}
	// Edge order must not affect the fingerprint: reversed edges hit.
	edge.Edges = []Edge{edge.Edges[1], edge.Edges[0]}
	var ecached MapResponse
	postMap(t, h, edge, http.StatusOK, &ecached)
	if !ecached.Cached {
		t.Error("edge order changed the fingerprint")
	}
}

func TestMapRejectsBadRequests(t *testing.T) {
	srv := newTestServer(t, Config{MaxProcs: 128})
	h := srv.Handler()
	cases := []MapRequest{
		{},                                     // no pattern at all
		{Workload: "LU"},                       // no procs
		{Workload: "nope", Procs: 8},           // unknown workload
		{Workload: "LU", Procs: 8, Edges: []Edge{{Src: 0, Dst: 1}}}, // both
		{Workload: "LU", Procs: 4096},          // over MaxProcs
		{Workload: "LU", Procs: 8, Algorithm: "annealing"},
		{Workload: "LU", Procs: 8, Constraint: []int{1}},      // wrong length
		{Workload: "LU", Procs: 8, DeadlineMillis: -5},        // negative deadline
		{Procs: 4, Edges: []Edge{{Src: 0, Dst: 9}}},           // edge out of range
		{Procs: 4, Edges: []Edge{{Src: 0, Dst: 1, Volume: -1}}}, // negative traffic
	}
	for i, req := range cases {
		var e errorResponse
		postMap(t, h, req, http.StatusBadRequest, &e)
		if e.Error == "" {
			t.Errorf("case %d returned no error message", i)
		}
	}
	// A structurally fine request that is infeasible against the
	// snapshot (more processes than total capacity) fails problem
	// validation, not request validation.
	var e errorResponse
	postMap(t, h, MapRequest{Workload: "LU", Procs: 100, Seed: 1}, http.StatusUnprocessableEntity, &e)
	if e.Error == "" {
		t.Error("infeasible request returned no error message")
	}
}

func TestMapDeadlineExceeded(t *testing.T) {
	srv := newTestServer(t, Config{Workers: 1})
	block := make(chan struct{})
	var once sync.Once
	srv.solveHook = func() { <-block }
	defer once.Do(func() { close(block) })
	h := srv.Handler()

	var e errorResponse
	postMap(t, h, MapRequest{Workload: "LU", Procs: 16, Seed: 1, DeadlineMillis: 30}, http.StatusGatewayTimeout, &e)
	if e.Error == "" {
		t.Error("timeout returned no error message")
	}
	once.Do(func() { close(block) })
	view := srv.metrics.Snapshot(0, 0)
	if view.Timeouts != 1 {
		t.Errorf("timeouts = %d, want 1", view.Timeouts)
	}
}

// TestMapTimedOutWaiterCountsAsTimeout is the regression test for the
// singleflight outcome misclassification: a waiter whose deadline fired
// while the leader was still solving used to come back shared=true, so
// the 504 was tallied under deduped instead of timeouts.
func TestMapTimedOutWaiterCountsAsTimeout(t *testing.T) {
	srv := newTestServer(t, Config{Workers: 1})
	entered := make(chan struct{}, 1)
	release := make(chan struct{})
	var once sync.Once
	srv.solveHook = func() {
		entered <- struct{}{}
		<-release
	}
	defer once.Do(func() { close(release) })
	h := srv.Handler()

	req := MapRequest{Workload: "LU", Procs: 16, Seed: 1}
	leader := make(chan int, 1)
	go func() {
		body, _ := json.Marshal(req)
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("POST", "/v1/map", bytes.NewReader(body)))
		leader <- rec.Code
	}()
	<-entered // the leader is parked inside its solve

	// An identical request joins the leader's flight and times out first.
	waiter := req
	waiter.DeadlineMillis = 30
	var e errorResponse
	postMap(t, h, waiter, http.StatusGatewayTimeout, &e)

	view := srv.metrics.Snapshot(0, 0)
	if view.Timeouts != 1 {
		t.Errorf("timeouts = %d, want 1", view.Timeouts)
	}
	if view.Deduped != 0 {
		t.Errorf("deduped = %d, want 0 (timed-out waiter misclassified as dedup)", view.Deduped)
	}

	once.Do(func() { close(release) })
	if code := <-leader; code != http.StatusOK {
		t.Fatalf("leader status = %d, want 200", code)
	}
	if view := srv.metrics.Snapshot(0, 0); view.Solves != 1 {
		t.Errorf("solves = %d, want 1", view.Solves)
	}
}

func TestMapQueueFullSheds(t *testing.T) {
	srv := newTestServer(t, Config{Workers: 1, QueueDepth: 1})
	entered := make(chan struct{}, 8)
	release := make(chan struct{})
	srv.solveHook = func() {
		entered <- struct{}{}
		<-release
	}
	h := srv.Handler()

	post := func(seed int64) chan int {
		ch := make(chan int, 1)
		go func() {
			body, _ := json.Marshal(MapRequest{Workload: "LU", Procs: 16, Seed: seed})
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, httptest.NewRequest("POST", "/v1/map", bytes.NewReader(body)))
			ch <- rec.Code
		}()
		return ch
	}
	c1 := post(1)
	<-entered // the single worker is now parked inside request 1's solve
	c2 := post(2)
	// Request 2 queues behind the busy worker; the slot cannot drain
	// until release closes, so waiting on QueueDepth is deterministic.
	deadline := time.Now().Add(2 * time.Second)
	for srv.pool.QueueDepth() < 1 {
		if time.Now().After(deadline) {
			t.Fatal("second request never occupied the queue slot")
		}
		time.Sleep(time.Millisecond)
	}
	// Worker and queue both occupied: a third distinct request is shed
	// immediately with 503.
	body, _ := json.Marshal(MapRequest{Workload: "LU", Procs: 16, Seed: 3})
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("POST", "/v1/map", bytes.NewReader(body)))
	if rec.Code != http.StatusServiceUnavailable {
		t.Errorf("overloaded server answered %d, want 503", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Error("503 carried no Retry-After header")
	}
	close(release)
	if s := <-c1; s != http.StatusOK {
		t.Errorf("first request status %d", s)
	}
	if s := <-c2; s != http.StatusOK {
		t.Errorf("second request status %d", s)
	}
	if view := srv.metrics.Snapshot(0, 0); view.Rejected != 1 {
		t.Errorf("rejected = %d, want 1", view.Rejected)
	}
}

func TestSnapshotSwapChangesFingerprint(t *testing.T) {
	srv := newTestServer(t, Config{})
	h := srv.Handler()
	// 16 processes over 64 slots: the mapper has room to steer around a
	// dead site (with procs == capacity it would have no choice).
	req := MapRequest{Workload: "LU", Procs: 16, Seed: 1}
	var v1 MapResponse
	postMap(t, h, req, http.StatusOK, &v1)

	// Publish a degraded snapshot through the admin endpoint.
	upd := SnapshotUpdate{FaultReport: &faults.Report{Schedule: "drill", DeadSites: []int{3}}}
	body, _ := json.Marshal(upd)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("POST", "/admin/snapshot", bytes.NewReader(body)))
	if rec.Code != http.StatusOK {
		t.Fatalf("admin snapshot status %d: %s", rec.Code, rec.Body.String())
	}
	var sv snapshotView
	if err := json.Unmarshal(rec.Body.Bytes(), &sv); err != nil {
		t.Fatal(err)
	}
	if sv.Version != 2 || sv.Source != "fault-report" {
		t.Errorf("published view = %+v", sv)
	}

	// The same request now misses the cache and resolves against v2,
	// steering off the dead site.
	var v2 MapResponse
	postMap(t, h, req, http.StatusOK, &v2)
	if v2.Cached {
		t.Error("request hit stale cache across snapshot swap")
	}
	if v2.SnapshotVersion != 2 {
		t.Errorf("snapshot version = %d, want 2", v2.SnapshotVersion)
	}
	for i, s := range v2.Placement {
		if s == 3 {
			t.Errorf("process %d placed on dead site 3", i)
			break
		}
	}
	// The old result is still served for old-version fingerprints only;
	// re-requesting naturally uses the current version, so the digest
	// may differ.
	if v1.SnapshotVersion != 1 {
		t.Errorf("first response version mutated to %d", v1.SnapshotVersion)
	}
}

// TestRepeatedFaultReportsDoNotCompound posts the same fault report
// several times — the WANify-style periodic re-gauge — and checks the
// served model stays at one application of the penalty, because each
// report derives from the last measured snapshot rather than the
// already-degraded current one.
func TestRepeatedFaultReportsDoNotCompound(t *testing.T) {
	srv := newTestServer(t, Config{})
	h := srv.Handler()
	measured := srv.store.Current().LT.At(0, 1)
	body, _ := json.Marshal(SnapshotUpdate{FaultReport: &faults.Report{
		Schedule:      "re-gauge",
		DegradedPairs: [][2]int{{0, 1}},
	}})
	for i := 0; i < 3; i++ {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("POST", "/admin/snapshot", bytes.NewReader(body)))
		if rec.Code != http.StatusOK {
			t.Fatalf("report %d status %d: %s", i+1, rec.Code, rec.Body.String())
		}
		if got, want := srv.store.Current().LT.At(0, 1), measured*DegradeFactor; got != want {
			t.Fatalf("after report %d, LT(0,1) = %g, want %g (penalty compounded)", i+1, got, want)
		}
	}
	if got := srv.store.Current().Version; got != 4 {
		t.Errorf("version = %d, want 4 (each report still publishes)", got)
	}
}

func TestAdminSnapshotMatrices(t *testing.T) {
	srv := newTestServer(t, Config{})
	h := srv.Handler()
	m := srv.store.Current().M()
	lt := make([][]float64, m)
	bt := make([][]float64, m)
	for k := range lt {
		lt[k] = make([]float64, m)
		bt[k] = make([]float64, m)
		for l := range lt[k] {
			lt[k][l] = 0.01
			bt[k][l] = 1e7
		}
	}
	body, _ := json.Marshal(SnapshotUpdate{Source: "recalibration", LT: lt, BT: bt})
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("POST", "/admin/snapshot", bytes.NewReader(body)))
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	snap := srv.store.Current()
	if snap.Version != 2 || snap.Source != "recalibration" || snap.LT.At(0, 1) != 0.01 {
		t.Errorf("snapshot not replaced: v%d %q LT(0,1)=%g", snap.Version, snap.Source, snap.LT.At(0, 1))
	}

	// Bad updates: mismatched size, both-forms, neither.
	for i, upd := range []SnapshotUpdate{
		{LT: lt[:1], BT: bt[:1]},
		{LT: lt, BT: bt, FaultReport: &faults.Report{}},
		{},
	} {
		body, _ := json.Marshal(upd)
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("POST", "/admin/snapshot", bytes.NewReader(body)))
		if rec.Code != http.StatusBadRequest {
			t.Errorf("bad update %d accepted with %d", i, rec.Code)
		}
	}
}

func TestHealthzAndMetrics(t *testing.T) {
	srv := newTestServer(t, Config{})
	h := srv.Handler()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("healthz status %d", rec.Code)
	}
	var health struct {
		Status   string       `json:"status"`
		Snapshot snapshotView `json:"snapshot"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &health); err != nil {
		t.Fatal(err)
	}
	if health.Status != "ok" || health.Snapshot.Version != 1 || health.Snapshot.Sites != 4 {
		t.Errorf("health = %+v", health)
	}

	postMap(t, h, MapRequest{Workload: "LU", Procs: 16, Seed: 1}, http.StatusOK, nil)
	postMap(t, h, MapRequest{Workload: "LU", Procs: 16, Seed: 1}, http.StatusOK, nil)
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	var view View
	if err := json.Unmarshal(rec.Body.Bytes(), &view); err != nil {
		t.Fatal(err)
	}
	if view.Requests != 2 || view.CacheHits != 1 || view.Solves != 1 {
		t.Errorf("metrics view = %+v", view)
	}
	if view.RequestLatency.Count != 2 || view.SolveLatency.Count != 1 {
		t.Errorf("latency windows = %+v / %+v", view.RequestLatency, view.SolveLatency)
	}
	if view.HitRate != 0.5 {
		t.Errorf("hit rate = %g, want 0.5", view.HitRate)
	}
}

// TestDrainOnShutdown is the SIGTERM-drain test the acceptance criteria
// name: an in-flight request admitted before shutdown completes with
// 200 while the listener refuses new work, and the pool drains.
func TestDrainOnShutdown(t *testing.T) {
	srv := newTestServer(t, Config{Workers: 1})
	entered := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	srv.solveHook = func() {
		once.Do(func() { close(entered) })
		<-release
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	hs := &http.Server{Handler: srv.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	// Fire a slow solve and wait until it is inside the worker.
	reqDone := make(chan int, 1)
	go func() {
		body, _ := json.Marshal(MapRequest{Workload: "LU", Procs: 16, Seed: 1})
		resp, err := http.Post("http://"+ln.Addr().String()+"/v1/map", "application/json", bytes.NewReader(body))
		if err != nil {
			reqDone <- -1
			return
		}
		defer resp.Body.Close()
		reqDone <- resp.StatusCode
	}()
	<-entered

	// Begin graceful shutdown while the request is in flight, then let
	// the solve finish.
	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		shutdownDone <- hs.Shutdown(ctx)
	}()
	time.Sleep(20 * time.Millisecond) // let Shutdown close the listener
	close(release)

	if status := <-reqDone; status != http.StatusOK {
		t.Errorf("in-flight request finished with %d during drain, want 200", status)
	}
	if err := <-shutdownDone; err != nil {
		t.Errorf("graceful shutdown failed: %v", err)
	}
	if err := <-serveErr; err != http.ErrServerClosed {
		t.Errorf("Serve returned %v, want ErrServerClosed", err)
	}
	// After the listener is gone the pool drains without deadlock.
	done := make(chan struct{})
	go func() { srv.Close(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("pool failed to drain after shutdown")
	}
}

// TestServerConcurrentMixedTraffic hammers one server with cached,
// novel, and admin traffic at once; meaningful under -race.
func TestServerConcurrentMixedTraffic(t *testing.T) {
	srv := newTestServer(t, Config{Workers: 4, QueueDepth: 64, CacheSize: 64})
	h := srv.Handler()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				switch {
				case g == 0 && i%10 == 0:
					// Occasional snapshot publications mid-traffic.
					upd := SnapshotUpdate{FaultReport: &faults.Report{Schedule: fmt.Sprintf("s%d", i), DegradedPairs: [][2]int{{0, 1}}}}
					body, _ := json.Marshal(upd)
					rec := httptest.NewRecorder()
					h.ServeHTTP(rec, httptest.NewRequest("POST", "/admin/snapshot", bytes.NewReader(body)))
					if rec.Code != http.StatusOK {
						t.Errorf("admin update failed: %d", rec.Code)
						return
					}
				default:
					req := MapRequest{Workload: "LU", Procs: 16, Seed: int64(i % 3)}
					body, _ := json.Marshal(req)
					rec := httptest.NewRecorder()
					h.ServeHTTP(rec, httptest.NewRequest("POST", "/v1/map", bytes.NewReader(body)))
					if rec.Code != http.StatusOK && rec.Code != http.StatusServiceUnavailable {
						t.Errorf("map status %d: %s", rec.Code, rec.Body.String())
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
}
