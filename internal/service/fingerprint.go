package service

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"hash"
	"math"
	"sort"

	"geoprocmap/internal/core"
)

// fingerprint computes the canonical cache key of a request solved
// against a snapshot version. Everything that can change the placement
// participates: the communication pattern (preset name or sorted edge
// list), pins, allowed sets, solver choice and seed, and the snapshot
// version itself. Two requests with the same fingerprint are guaranteed
// to produce bit-identical results, which is what lets the cache and the
// singleflight layer return one request's answer to another.
//
//geolint:deterministic
func fingerprint(r *MapRequest, snapshotVersion uint64) string {
	h := sha256.New()
	writeU64(h, snapshotVersion)
	writeStr(h, r.Algorithm)
	writeU64(h, uint64(r.Kappa))
	writeU64(h, uint64(r.Seed))
	writeU64(h, uint64(r.Procs))
	writeU64(h, uint64(r.iters()))
	writeStr(h, r.Workload)
	if len(r.Edges) > 0 {
		edges := append([]Edge(nil), r.Edges...)
		sort.Slice(edges, func(i, j int) bool {
			if edges[i].Src != edges[j].Src {
				return edges[i].Src < edges[j].Src
			}
			return edges[i].Dst < edges[j].Dst
		})
		writeU64(h, uint64(len(edges)))
		for _, e := range edges {
			writeU64(h, uint64(e.Src))
			writeU64(h, uint64(e.Dst))
			writeF64(h, e.Volume)
			writeF64(h, e.Msgs)
		}
	}
	// An all-Unconstrained vector fingerprints identically to an absent
	// one, matching how the problem is built.
	pinned := false
	for _, c := range r.Constraint {
		if c != core.Unconstrained {
			pinned = true
			break
		}
	}
	if pinned {
		writeU64(h, uint64(len(r.Constraint)))
		for _, c := range r.Constraint {
			writeU64(h, uint64(int64(c)))
		}
	}
	if len(r.Allowed) > 0 {
		writeU64(h, uint64(len(r.Allowed)))
		for _, set := range r.Allowed {
			writeU64(h, uint64(len(set)))
			for _, s := range set {
				writeU64(h, uint64(s))
			}
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}

// routingVersion is the snapshot-version sentinel RoutingKey hashes in
// place of a real version. Store versions start at 1 and only ever
// increase, so routing keys can never collide with cache keys.
const routingVersion = ^uint64(0)

// RoutingKey is the cluster routing key of a request: its fingerprint
// independent of any snapshot version. Shard ownership must not change
// when a snapshot is published (that would migrate every cache entry),
// and clients cannot know the fleet's current version — so routing
// hashes the request alone while cache keys keep embedding the version.
//
//geolint:deterministic
func RoutingKey(r *MapRequest) string { return fingerprint(r, routingVersion) }

// PlacementDigest is the canonical SHA-256 of a placement vector — the
// digest carried in MapResult.Digest. Exported so the re-gauging loop
// (and the offline replay scenario) can stamp remapped results with the
// same digest clients already compare.
func PlacementDigest(pl core.Placement) string { return placementDigest(pl) }

// placementDigest is the canonical SHA-256 of a placement vector,
// exposed in responses so clients can assert determinism cheaply.
//
//geolint:deterministic
func placementDigest(pl core.Placement) string {
	h := sha256.New()
	for _, s := range pl {
		writeU64(h, uint64(int64(s)))
	}
	return hex.EncodeToString(h.Sum(nil))
}

func writeU64(h hash.Hash, v uint64) {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], v)
	h.Write(buf[:]) //geolint:ignore errcheck hash.Hash.Write documents a nil error
}

func writeF64(h hash.Hash, v float64) { writeU64(h, math.Float64bits(v)) }

func writeStr(h hash.Hash, s string) {
	writeU64(h, uint64(len(s)))
	h.Write([]byte(s)) //geolint:ignore errcheck hash.Hash.Write documents a nil error
}
