package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"

	"geoprocmap/internal/mat"
)

// ForwardedHeader marks a request one daemon forwarded to the shard
// owner on a cache miss. Its presence tells the owner to solve locally
// no matter what its own ring says, so a misconfigured fleet can bounce
// a request at most once instead of looping.
const ForwardedHeader = "X-Geomapd-Forwarded"

// ClusterConfig assembles a Cluster. Zero values select the noted
// defaults.
type ClusterConfig struct {
	// Self is this daemon's own base URL as it appears in Peers;
	// required.
	Self string
	// Peers is the full fleet membership including Self; required. Every
	// daemon and every routing client must be configured with the same
	// list (order and trailing slashes do not matter).
	Peers []string
	// Timeout bounds one peer HTTP call — a result fetch or one
	// replication fan-out leg (default 10 s).
	Timeout time.Duration
	// Logf receives peer-failure log lines; nil discards them.
	Logf func(format string, args ...any)
}

// Cluster is a daemon's view of its fleet: the consistent-hash ring
// deciding which peer owns each routing key, an HTTP client for
// consulting owners and fanning out snapshots, and passively observed
// per-peer health. All methods are safe for concurrent use.
type Cluster struct {
	self   string
	ring   *Ring
	client *http.Client
	logf   func(format string, args ...any)

	// healthMu guards only the health map; it is never held across a
	// peer round-trip.
	healthMu sync.Mutex
	health   map[string]*peerHealth
}

// peerHealth is the passively observed state of one peer, updated on
// every fetch or replication attempt.
type peerHealth struct {
	Failures  int    // consecutive failures (0 = last contact succeeded)
	Successes uint64 // lifetime successful calls
	LastError string // most recent failure, "" after a success
}

// NewCluster validates the fleet configuration and builds the ring.
// Self must be one of Peers.
func NewCluster(cfg ClusterConfig) (*Cluster, error) {
	ring, err := NewRing(cfg.Peers)
	if err != nil {
		return nil, err
	}
	if ring.Size() < 2 {
		return nil, fmt.Errorf("service: a cluster needs at least 2 peers, got %d", ring.Size())
	}
	self := NormalizePeerURL(cfg.Self)
	found := false
	for _, p := range ring.Peers() {
		if p == self {
			found = true
			break
		}
	}
	if !found {
		return nil, fmt.Errorf("service: self %q is not in the peer list %v", cfg.Self, ring.Peers())
	}
	if cfg.Timeout == 0 {
		cfg.Timeout = 10 * time.Second
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	c := &Cluster{
		self:   self,
		ring:   ring,
		client: &http.Client{Timeout: cfg.Timeout},
		logf:   cfg.Logf,
		health: make(map[string]*peerHealth, ring.Size()-1),
	}
	for _, p := range ring.Peers() {
		if p != self {
			c.health[p] = &peerHealth{}
		}
	}
	return c, nil
}

// Self returns this daemon's normalized base URL.
func (c *Cluster) Self() string { return c.self }

// Ring exposes the fleet's hash ring (geoload builds the identical ring
// client-side from the same URL list).
func (c *Cluster) Ring() *Ring { return c.ring }

// Owner returns the peer URL owning a routing key.
func (c *Cluster) Owner(key string) string { return c.ring.Owner(key) }

// IsSelf reports whether url names this daemon.
func (c *Cluster) IsSelf(url string) bool { return url == c.self }

// FetchResult consults the shard owner for a request this daemon does
// not own: the request is re-posted to peer with ForwardedHeader set, so
// the owner solves (or serves its cache) locally. The owner's result is
// returned verbatim; the caller decides whether its snapshot version is
// acceptable.
func (c *Cluster) FetchResult(ctx context.Context, peer string, req *MapRequest) (*MapResult, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, peer+"/v1/map", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	hreq.Header.Set(ForwardedHeader, c.self)
	resp, err := c.client.Do(hreq)
	if err != nil {
		c.observe(peer, err)
		return nil, err
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close() //geolint:ignore errcheck best-effort close of a response body already read to EOF
	if err != nil {
		c.observe(peer, err)
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		// The peer is up but refused (shedding, draining, bad request);
		// that is a routing miss, not a peer-health event — a shedding
		// owner must not be marked dead.
		return nil, fmt.Errorf("peer %s answered %d: %.120s", peer, resp.StatusCode, data)
	}
	var mr MapResponse
	if err := json.Unmarshal(data, &mr); err != nil {
		c.observe(peer, err)
		return nil, err
	}
	c.observe(peer, nil)
	return &mr.MapResult, nil
}

// Replicate fans a freshly published snapshot out to every peer,
// version-ordered: each peer applies it via Store.PublishAt, which
// ignores versions at or below its own, so replays and races are
// idempotent. Legs run concurrently and each is bounded by the cluster
// timeout; the returned map carries one entry per peer (nil = applied
// or already current). A failed leg leaves that peer on its previous
// snapshot until the next publication reaches it — the documented
// catch-up behavior.
func (c *Cluster) Replicate(snap *Snapshot) map[string]error {
	upd := replicationUpdate(snap)
	body, err := json.Marshal(upd)
	if err != nil {
		// A snapshot that marshaled into the store cannot fail here;
		// belt and braces for future field types.
		c.logf("cluster: encoding replication v%d: %v", snap.Version, err)
		return nil
	}
	// Legs land in a slice indexed by the sorted peer list and are folded
	// after the barrier, so collection order — and therefore logging and
	// the returned map — is a function of the fleet configuration alone,
	// not of which peer answered first.
	peers := c.ring.Peers()
	errs := make([]error, len(peers))
	var wg sync.WaitGroup
	for i, p := range peers {
		if p == c.self {
			continue
		}
		wg.Add(1)
		go func(i int, peer string) {
			defer wg.Done()
			errs[i] = c.replicateTo(peer, body)
		}(i, p)
	}
	wg.Wait()
	out := make(map[string]error, len(peers)-1)
	for i, p := range peers {
		if p == c.self {
			continue
		}
		out[p] = errs[i]
		if errs[i] != nil {
			c.logf("cluster: replicating v%d to %s: %v", snap.Version, p, errs[i])
		}
	}
	return out
}

// replicateTo posts one replication message to one peer.
func (c *Cluster) replicateTo(peer string, body []byte) error {
	resp, err := c.client.Post(peer+"/admin/snapshot", "application/json", bytes.NewReader(body))
	if err != nil {
		c.observe(peer, err)
		return err
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close() //geolint:ignore errcheck best-effort close of a response body already read to EOF
	if err != nil {
		c.observe(peer, err)
		return err
	}
	if resp.StatusCode != http.StatusOK {
		err := fmt.Errorf("peer answered %d: %.120s", resp.StatusCode, data)
		c.observe(peer, err)
		return err
	}
	c.observe(peer, nil)
	return nil
}

// replicationUpdate renders a published snapshot as the admin-endpoint
// message a peer can apply verbatim. The concrete matrices travel — not
// the fault report that may have produced them — so replication never
// depends on peers agreeing about base snapshots.
func replicationUpdate(snap *Snapshot) SnapshotUpdate {
	return SnapshotUpdate{
		Source:   snap.Source,
		LT:       matrixRows(snap.LT),
		BT:       matrixRows(snap.BT),
		Degraded: snap.Degraded,
		Derived:  snap.derived,
		Version:  snap.Version,
	}
}

// matrixRows copies a matrix into the row-major JSON shape of
// SnapshotUpdate.
func matrixRows(m *mat.Matrix) [][]float64 {
	out := make([][]float64, m.Rows())
	for i := range out {
		out[i] = m.Row(i)
	}
	return out
}

// observe updates a peer's passive health from one call's outcome.
func (c *Cluster) observe(peer string, err error) {
	c.healthMu.Lock()
	defer c.healthMu.Unlock()
	h, ok := c.health[peer]
	if !ok {
		return
	}
	if err != nil {
		h.Failures++
		h.LastError = err.Error()
		return
	}
	h.Failures = 0
	h.Successes++
	h.LastError = ""
}

// PeerStatus is one peer's health block in /healthz and /metrics.
type PeerStatus struct {
	Peer      string `json:"peer"`
	Healthy   bool   `json:"healthy"`
	Failures  int    `json:"consecutive_failures,omitempty"`
	Successes uint64 `json:"successes"`
	LastError string `json:"last_error,omitempty"`
}

// StatusProbe renders the cluster block for the server's component
// status mechanism: self, fleet size, and per-peer health in peer-name
// order. ok is false while any peer's last contact failed — surfacing
// "degraded" in /healthz without failing the daemon, because a node
// with dead peers still serves soundly by solving locally.
func (c *Cluster) StatusProbe() (any, bool) {
	c.healthMu.Lock()
	names := make([]string, 0, len(c.health))
	for p := range c.health {
		names = append(names, p)
	}
	sort.Strings(names)
	peers := make([]PeerStatus, 0, len(names))
	ok := true
	for _, p := range names {
		h := c.health[p]
		healthy := h.Failures == 0
		if !healthy {
			ok = false
		}
		peers = append(peers, PeerStatus{
			Peer:      p,
			Healthy:   healthy,
			Failures:  h.Failures,
			Successes: h.Successes,
			LastError: h.LastError,
		})
	}
	c.healthMu.Unlock()
	return map[string]any{
		"self":  c.self,
		"size":  c.ring.Size(),
		"peers": peers,
	}, ok
}

// Replicator pairs a snapshot store with the cluster fan-out: Publish
// installs locally first (assigning the version), then pushes the same
// version to every peer. It satisfies the regauge loop's publisher
// interface, so a clustered daemon's re-gauging publications reach the
// whole fleet with no changes to the loop itself.
type Replicator struct {
	store   *Store
	cluster *Cluster
}

// NewReplicator wires a store to a cluster.
func NewReplicator(store *Store, cluster *Cluster) *Replicator {
	return &Replicator{store: store, cluster: cluster}
}

// Current returns the local store's current snapshot.
func (r *Replicator) Current() *Snapshot { return r.store.Current() }

// Publish installs snap locally, then replicates it at its assigned
// version. Peer failures are logged by the cluster and never fail the
// local publication — the origin daemon must keep serving the freshest
// model it has.
func (r *Replicator) Publish(snap *Snapshot) (uint64, error) {
	version, err := r.store.Publish(snap)
	if err != nil {
		return 0, err
	}
	r.cluster.Replicate(snap)
	return version, nil
}
