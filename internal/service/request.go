package service

import (
	"fmt"

	"geoprocmap/internal/apps"
	"geoprocmap/internal/baselines"
	"geoprocmap/internal/comm"
	"geoprocmap/internal/core"
	"geoprocmap/internal/mat"
)

// Edge is one directed traffic entry of an explicit communication
// pattern (a CG/AG pair), mirroring the problem JSON codec in
// internal/core.
type Edge struct {
	Src    int     `json:"src"`
	Dst    int     `json:"dst"`
	Volume float64 `json:"volume"`
	Msgs   float64 `json:"msgs"`
}

// MapRequest is the body of POST /v1/map. The communication pattern
// comes either from a named workload preset (profiled server-side and
// memoized) or from an explicit edge list — exactly one of the two.
type MapRequest struct {
	// Workload names a preset application (LU, BT, SP, K-means, DNN,
	// CG, MG); Procs is its process count and Iters the profiled
	// iteration count (default 1).
	Workload string `json:"workload,omitempty"`
	Procs    int    `json:"procs,omitempty"`
	Iters    int    `json:"iters,omitempty"`
	// Edges is the explicit alternative to Workload. Procs must be set
	// to the process count the edges index into.
	Edges []Edge `json:"edges,omitempty"`
	// Constraint optionally pins processes to sites (-1 = free); length
	// Procs. Empty means fully unconstrained.
	Constraint []int `json:"constraint,omitempty"`
	// Allowed optionally restricts each process to a set of admissible
	// sites (the multi-site constraint extension).
	Allowed [][]int `json:"allowed,omitempty"`
	// Algorithm selects the mapper: geo (default), multilevel, greedy,
	// mpipp, random, montecarlo.
	Algorithm string `json:"algorithm,omitempty"`
	// Kappa is the geo mapper's group count (0 = default).
	Kappa int `json:"kappa,omitempty"`
	// Seed drives the solver's randomness; identical requests against
	// the same snapshot version produce bit-identical placements.
	Seed int64 `json:"seed,omitempty"`
	// DeadlineMillis bounds the request end to end — queueing included.
	// 0 uses the server default.
	DeadlineMillis int64 `json:"deadline_ms,omitempty"`
}

// MapResult is the cacheable part of a mapping answer: everything
// derived purely from (request fingerprint, snapshot version).
type MapResult struct {
	// SnapshotVersion is the network snapshot the placement was solved
	// against.
	SnapshotVersion uint64 `json:"snapshot_version"`
	// Algorithm echoes the mapper that produced the placement.
	Algorithm string `json:"algorithm"`
	// Cost is the α–β objective of the placement; LatencyCost and
	// BandwidthCost are its two terms.
	Cost          float64 `json:"cost"`
	LatencyCost   float64 `json:"latency_cost"`
	BandwidthCost float64 `json:"bandwidth_cost"`
	// Placement maps each process to its site.
	Placement []int `json:"placement"`
	// Digest is the canonical SHA-256 of the placement vector, so
	// clients can compare results across runs without shipping the
	// vector around.
	Digest string `json:"digest"`
	// SolveMillis is the wall time of the original solve (a cache hit
	// echoes the miss that populated it).
	SolveMillis float64 `json:"solve_ms"`
}

// MapResponse is the body of a successful POST /v1/map.
type MapResponse struct {
	MapResult
	// Cached reports that the result came from the LRU without any
	// solve; Deduped that this request shared a concurrent identical
	// solve rather than running its own; Peer that the receiving daemon
	// filled its cache from the shard owner instead of solving.
	Cached  bool `json:"cached"`
	Deduped bool `json:"deduped,omitempty"`
	Peer    bool `json:"peer,omitempty"`
}

// errorResponse is the JSON error body every non-2xx answer carries.
type errorResponse struct {
	Error string `json:"error"`
}

// validate checks the request shape against the server's admission
// bounds and the snapshot's site count, without profiling anything.
func (r *MapRequest) validate(maxProcs int, m int) error {
	switch {
	case r.Workload == "" && len(r.Edges) == 0:
		return fmt.Errorf("request needs a workload preset or an explicit edge list")
	case r.Workload != "" && len(r.Edges) > 0:
		return fmt.Errorf("workload %q and explicit edges are mutually exclusive", r.Workload)
	case r.Procs <= 0:
		return fmt.Errorf("procs = %d, want > 0", r.Procs)
	case r.Procs > maxProcs:
		return fmt.Errorf("procs = %d exceeds the server bound %d", r.Procs, maxProcs)
	case r.Iters < 0:
		return fmt.Errorf("iters = %d, want >= 0", r.Iters)
	case r.DeadlineMillis < 0:
		return fmt.Errorf("deadline_ms = %d, want >= 0", r.DeadlineMillis)
	}
	if len(r.Constraint) != 0 && len(r.Constraint) != r.Procs {
		return fmt.Errorf("constraint vector has length %d, want %d", len(r.Constraint), r.Procs)
	}
	for i, c := range r.Constraint {
		if c != core.Unconstrained && (c < 0 || c >= m) {
			return fmt.Errorf("constraint[%d] = %d out of range [0,%d)", i, c, m)
		}
	}
	if len(r.Allowed) != 0 && len(r.Allowed) != r.Procs {
		return fmt.Errorf("allowed has %d entries, want %d", len(r.Allowed), r.Procs)
	}
	for i, set := range r.Allowed {
		for _, s := range set {
			if s < 0 || s >= m {
				return fmt.Errorf("allowed[%d] contains site %d out of range [0,%d)", i, s, m)
			}
		}
	}
	for i, e := range r.Edges {
		if e.Src < 0 || e.Src >= r.Procs || e.Dst < 0 || e.Dst >= r.Procs {
			return fmt.Errorf("edge %d endpoint out of range [0,%d)", i, r.Procs)
		}
		if e.Volume < 0 || e.Msgs < 0 {
			return fmt.Errorf("edge %d has negative traffic", i)
		}
	}
	if _, err := r.Mapper(1); err != nil { // workers=1: only the algorithm name is validated here
		return err
	}
	if r.Workload != "" {
		if _, err := apps.ByName(r.Workload); err != nil {
			return err
		}
	}
	return nil
}

// iters returns the effective profiled iteration count.
func (r *MapRequest) iters() int {
	if r.Iters == 0 {
		return 1
	}
	return r.Iters
}

// Mapper instantiates the requested algorithm. solverWorkers is the
// server's per-solve order-search parallelism (see Config.SolverWorkers);
// it does not enter the request fingerprint because the parallel search's
// deterministic reduction returns byte-identical placements at every
// worker count.
func (r *MapRequest) Mapper(solverWorkers int) (core.Mapper, error) {
	switch r.Algorithm {
	case "", "geo":
		return &core.GeoMapper{Kappa: r.Kappa, Seed: r.Seed, Workers: solverWorkers}, nil
	case "multilevel":
		return &core.MultilevelGeoMapper{Kappa: r.Kappa, Seed: r.Seed, Workers: solverWorkers}, nil
	case "greedy":
		return &baselines.Greedy{}, nil
	case "mpipp":
		return &baselines.MPIPP{Seed: r.Seed}, nil
	case "random":
		return &baselines.Random{Seed: r.Seed}, nil
	case "montecarlo":
		return &baselines.MonteCarlo{Seed: r.Seed, Samples: 10000}, nil
	default:
		return nil, fmt.Errorf("unknown algorithm %q", r.Algorithm)
	}
}

// GraphFunc supplies a workload's profiled communication graph. The
// server passes its memoizing profiler; a nil GraphFunc profiles the
// workload directly (fine for infrequent callers like the re-gauging
// loop, which rebuilds a handful of problems per publication).
type GraphFunc func(workload string, procs, iters int) (*comm.Graph, error)

// Problem assembles the core.Problem for the request against a snapshot,
// profiling the workload through graphFor (nil profiles directly).
func (r *MapRequest) Problem(snap *Snapshot, graphFor GraphFunc) (*core.Problem, error) {
	var g *comm.Graph
	if r.Workload != "" {
		if graphFor == nil {
			graphFor = profileGraph
		}
		var err error
		g, err = graphFor(r.Workload, r.Procs, r.iters())
		if err != nil {
			return nil, err
		}
	} else {
		g = comm.NewGraph(r.Procs)
		for _, e := range r.Edges {
			g.AddTraffic(e.Src, e.Dst, e.Volume, e.Msgs)
		}
	}
	constraint := r.Constraint
	if len(constraint) == 0 {
		constraint = make([]int, r.Procs)
		for i := range constraint {
			constraint[i] = core.Unconstrained
		}
	}
	p := &core.Problem{
		Comm:       g,
		LT:         snap.LT,
		BT:         snap.BT,
		PC:         snap.PC,
		Capacity:   snap.Capacity,
		Constraint: mat.IntVec(constraint),
		Allowed:    r.Allowed,
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// profileGraph is the memoization-free GraphFunc.
func profileGraph(workload string, procs, iters int) (*comm.Graph, error) {
	app, err := apps.ByName(workload)
	if err != nil {
		return nil, err
	}
	return apps.Graph(app, procs, iters)
}
