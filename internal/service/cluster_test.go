package service

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// clusterNode is one daemon of a test fleet: a full Server wired to a
// Cluster, listening on a real TCP port (peers dial each other over
// loopback, exactly as a deployed fleet would).
type clusterNode struct {
	srv *Server
	hs  *httptest.Server
	url string
}

// startCluster boots n daemons that share one peer list. Each node gets
// its own Store seeded from the same snapshot parameters, so the fleet
// starts aligned at v1 the way `make serve-cluster` boots it.
func startCluster(t *testing.T, n int) []*clusterNode {
	t.Helper()
	nodes := make([]*clusterNode, n)
	peers := make([]string, n)
	for i := range nodes {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		hs := &httptest.Server{Listener: ln, Config: &http.Server{}}
		nodes[i] = &clusterNode{hs: hs, url: "http://" + ln.Addr().String()}
		peers[i] = nodes[i].url
	}
	for _, node := range nodes {
		store, err := NewStore(testSnapshot(t, 64, 1))
		if err != nil {
			t.Fatal(err)
		}
		cluster, err := NewCluster(ClusterConfig{
			Self:    node.url,
			Peers:   peers,
			Timeout: 5 * time.Second,
			Logf:    t.Logf,
		})
		if err != nil {
			t.Fatal(err)
		}
		srv, err := NewServer(Config{Store: store, Cluster: cluster, Workers: 2, Logf: t.Logf})
		if err != nil {
			t.Fatal(err)
		}
		node.srv = srv
		node.hs.Config.Handler = srv.Handler()
		node.hs.Start()
		t.Cleanup(node.hs.Close)
		t.Cleanup(srv.Close)
	}
	return nodes
}

// clusterRequests is a small seeded request stream covering cached
// repeats, novel seeds, and both solver families.
func clusterRequests(n int) []MapRequest {
	reqs := make([]MapRequest, n)
	for i := range reqs {
		reqs[i] = MapRequest{Workload: "LU", Procs: 16, Seed: int64(1 + i%7)}
		if i%5 == 0 {
			reqs[i].Algorithm = "greedy"
		}
	}
	return reqs
}

// postMapURL posts one request to a live node over TCP and returns the
// decoded response.
func postMapURL(t *testing.T, url string, req *MapRequest) MapResponse {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/map", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var mr MapResponse
	if err := json.NewDecoder(resp.Body).Decode(&mr); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST %s: status %d", url, resp.StatusCode)
	}
	return mr
}

// digestOf folds per-request digests in request order, mirroring
// geoload's combined placement digest.
func digestOf(digests []string) string {
	h := sha256.New()
	for i, d := range digests {
		fmt.Fprintf(h, "%d:%s\n", i, d)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// TestClusterDigestMatchesSingleNode is the cross-node determinism
// gate: the same seeded request stream must produce a byte-identical
// combined placement digest against one daemon, against a 3-node fleet
// with hash routing (every request lands on its shard owner), and
// against the same fleet with round-robin routing (most requests land
// on non-owners and travel the peer-consult path).
func TestClusterDigestMatchesSingleNode(t *testing.T) {
	reqs := clusterRequests(30)

	single := newTestServer(t, Config{Workers: 2})
	h := single.Handler()
	baseline := make([]string, len(reqs))
	for i := range reqs {
		var mr MapResponse
		postMap(t, h, reqs[i], http.StatusOK, &mr)
		baseline[i] = mr.Digest
	}
	want := digestOf(baseline)

	nodes := startCluster(t, 3)
	ring := nodes[0].srv.cluster.Ring()

	hashed := make([]string, len(reqs))
	for i := range reqs {
		hashed[i] = postMapURL(t, ring.Owner(RoutingKey(&reqs[i])), &reqs[i]).Digest
	}
	if got := digestOf(hashed); got != want {
		t.Errorf("hash-routed fleet digest %s != single-node %s", got, want)
	}

	rr := make([]string, len(reqs))
	peerFilled := 0
	for i := range reqs {
		mr := postMapURL(t, nodes[i%len(nodes)].url, &reqs[i])
		rr[i] = mr.Digest
		if mr.Peer {
			peerFilled++
		}
	}
	if got := digestOf(rr); got != want {
		t.Errorf("round-robin fleet digest %s != single-node %s", got, want)
	}

	// Round-robin routing must actually have exercised the cluster: some
	// requests landed on non-owners and were answered via peer consults.
	var peerHits, forwarded uint64
	for _, node := range nodes {
		v := node.srv.Metrics().Snapshot(0, 0)
		peerHits += v.PeerHits
		forwarded += v.Forwarded
	}
	if peerHits == 0 || forwarded == 0 {
		t.Errorf("peer_hits = %d, forwarded = %d; round-robin run never consulted a peer", peerHits, forwarded)
	}
	if peerFilled == 0 {
		t.Error("no round-robin response carried peer=true")
	}
}

// TestClusterSnapshotReplication posts fresh matrices to one node and
// expects the whole fleet to converge on the same version — the fan-out
// is synchronous, so by the time the POST returns every reachable peer
// has applied it. Replays must be idempotent.
func TestClusterSnapshotReplication(t *testing.T) {
	nodes := startCluster(t, 3)
	base := nodes[0].srv.store.Current()
	m := base.M()

	// Fresh matrices: scale ground truth so the update is valid but
	// distinguishable.
	lt := make([][]float64, m)
	bt := make([][]float64, m)
	for i := 0; i < m; i++ {
		lt[i] = make([]float64, m)
		bt[i] = make([]float64, m)
		for j := 0; j < m; j++ {
			lt[i][j] = base.LT.At(i, j) * 2
			bt[i][j] = base.BT.At(i, j) / 2
		}
	}
	upd := SnapshotUpdate{Source: "test-calibration", LT: lt, BT: bt}
	body, err := json.Marshal(upd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(nodes[0].url+"/admin/snapshot", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("admin post: status %d", resp.StatusCode)
	}

	for i, node := range nodes {
		cur := node.srv.store.Current()
		if cur.Version != 2 {
			t.Errorf("node %d is at v%d, want the replicated v2", i, cur.Version)
		}
		if got := cur.LT.At(0, 1); got != base.LT.At(0, 1)*2 {
			t.Errorf("node %d LT(0,1) = %g, want the replicated %g", i, got, base.LT.At(0, 1)*2)
		}
	}
	if src := nodes[1].srv.store.Current().Source; src != "test-calibration" {
		t.Errorf("replicated source = %q, want origin's", src)
	}

	// Replaying the replication message directly at a peer is a no-op:
	// same version, no error, model unchanged.
	rep := replicationUpdate(nodes[0].srv.store.Current())
	repBody, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	before := nodes[2].srv.store.Current()
	resp, err = http.Post(nodes[2].url+"/admin/snapshot", "application/json", bytes.NewReader(repBody))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("replay post: status %d", resp.StatusCode)
	}
	if nodes[2].srv.store.Current() != before {
		t.Error("idempotent replay replaced the snapshot")
	}
}

// TestClusterPeerDownFallsBackLocally kills one node and sends it every
// request: the survivors must keep answering correctly by solving
// locally, record the peer failures, and degrade (not fail) their
// health probes.
func TestClusterPeerDownFallsBackLocally(t *testing.T) {
	nodes := startCluster(t, 3)
	dead := nodes[2]
	dead.hs.Close()

	reqs := clusterRequests(12)
	ring := nodes[0].srv.cluster.Ring()
	answered := 0
	for i := range reqs {
		if ring.Owner(RoutingKey(&reqs[i])) != dead.url {
			continue
		}
		// The owner is down; a surviving non-owner must still answer.
		mr := postMapURL(t, nodes[0].url, &reqs[i])
		if len(mr.Placement) != reqs[i].Procs {
			t.Fatalf("request %d: got %d-proc placement, want %d", i, len(mr.Placement), reqs[i].Procs)
		}
		if mr.Peer {
			t.Errorf("request %d reported peer-filled, but the owner is down", i)
		}
		answered++
	}
	if answered == 0 {
		t.Skip("no request in the stream hashed to the killed node")
	}
	v := nodes[0].srv.Metrics().Snapshot(0, 0)
	if v.PeerErrors == 0 {
		t.Errorf("peer_errors = 0 after %d consults of a dead owner", answered)
	}
	if _, ok := nodes[0].srv.cluster.StatusProbe(); ok {
		t.Error("cluster probe still fully healthy with a dead peer")
	}
}

// TestNewClusterValidation exercises the configuration errors.
func TestNewClusterValidation(t *testing.T) {
	peers := []string{"http://a:1", "http://b:2"}
	if _, err := NewCluster(ClusterConfig{Self: "http://c:3", Peers: peers}); err == nil {
		t.Error("self outside the peer list accepted")
	}
	if _, err := NewCluster(ClusterConfig{Self: "http://a:1", Peers: peers[:1]}); err == nil {
		t.Error("single-peer cluster accepted")
	}
	c, err := NewCluster(ClusterConfig{Self: "a:1/", Peers: peers})
	if err != nil {
		t.Fatalf("normalized self rejected: %v", err)
	}
	if !c.IsSelf("http://a:1") {
		t.Error("normalization did not unify self with its peer entry")
	}
}
