package service

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

// fakeClock is the injectable monotonic clock the staleness tests drive.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}

func getJSON(t *testing.T, h http.Handler, path string, wantStatus int) map[string]any {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
	if rec.Code != wantStatus {
		t.Fatalf("GET %s status = %d, want %d (body %s)", path, rec.Code, wantStatus, rec.Body.String())
	}
	var body map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatalf("decoding %s: %v", path, err)
	}
	return body
}

// TestHealthzStaleness drives the staleness ladder on the injected
// clock: fresh snapshot → 200, age past MaxStaleness → 503 degraded,
// a newly published snapshot observed by the read path → 200 again.
func TestHealthzStaleness(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	srv := newTestServer(t, Config{MaxStaleness: time.Hour, Now: clk.now})
	h := srv.Handler()

	body := getJSON(t, h, "/healthz", http.StatusOK)
	if body["status"] != "ok" {
		t.Fatalf("fresh status = %v", body["status"])
	}
	if age := body["snapshot_age_seconds"].(float64); age != 0 {
		t.Fatalf("fresh age = %v, want 0", age)
	}
	if max := body["max_staleness_seconds"].(float64); max != 3600 {
		t.Fatalf("max_staleness_seconds = %v, want 3600", max)
	}

	clk.advance(30 * time.Minute)
	body = getJSON(t, h, "/healthz", http.StatusOK)
	if age := body["snapshot_age_seconds"].(float64); age != 1800 {
		t.Fatalf("age after 30m = %v, want 1800", age)
	}

	clk.advance(31 * time.Minute)
	body = getJSON(t, h, "/healthz", http.StatusServiceUnavailable)
	if body["status"] != "degraded" {
		t.Fatalf("stale status = %v, want degraded", body["status"])
	}

	// Publishing a fresh snapshot resets the age the moment a read
	// observes the new version.
	if _, err := srv.store.Publish(testSnapshot(t, 64, 2)); err != nil {
		t.Fatal(err)
	}
	body = getJSON(t, h, "/healthz", http.StatusOK)
	if body["status"] != "ok" {
		t.Fatalf("post-publish status = %v, want ok", body["status"])
	}
	if age := body["snapshot_age_seconds"].(float64); age != 0 {
		t.Fatalf("post-publish age = %v, want 0", age)
	}
}

// TestHealthzNoMaxStaleness: with the limit disabled the age is still
// reported but never escalates to 503.
func TestHealthzNoMaxStaleness(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	srv := newTestServer(t, Config{Now: clk.now})
	h := srv.Handler()
	clk.advance(1000 * time.Hour)
	body := getJSON(t, h, "/healthz", http.StatusOK)
	if body["status"] != "ok" {
		t.Fatalf("status = %v, want ok with staleness limit disabled", body["status"])
	}
	if age := body["snapshot_age_seconds"].(float64); age != 3600000 {
		t.Fatalf("age = %v, want 3.6e6", age)
	}
	if _, present := body["max_staleness_seconds"]; present {
		t.Fatal("max_staleness_seconds reported with the limit disabled")
	}
}

// TestMetricsSnapshotAge: /metrics carries the same lazily observed age.
func TestMetricsSnapshotAge(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	srv := newTestServer(t, Config{Now: clk.now})
	h := srv.Handler()
	clk.advance(90 * time.Second)
	body := getJSON(t, h, "/metrics", http.StatusOK)
	if age := body["snapshot_age_seconds"].(float64); age != 90 {
		t.Fatalf("metrics age = %v, want 90", age)
	}
}

// TestStatusProbes: registered component probes render under
// "components" in both endpoints; a failing probe degrades the reported
// status without turning away traffic (only staleness does that).
func TestStatusProbes(t *testing.T) {
	srv := newTestServer(t, Config{})
	healthy := true
	var mu sync.Mutex
	srv.RegisterStatus("regauge", func() (any, bool) {
		mu.Lock()
		defer mu.Unlock()
		return map[string]any{"mode": "ok"}, healthy
	})
	h := srv.Handler()

	body := getJSON(t, h, "/healthz", http.StatusOK)
	comps, ok := body["components"].(map[string]any)
	if !ok {
		t.Fatalf("healthz lacks components: %v", body)
	}
	if _, ok := comps["regauge"]; !ok {
		t.Fatalf("components lack regauge block: %v", comps)
	}
	if body["status"] != "ok" {
		t.Fatalf("status = %v, want ok", body["status"])
	}

	mu.Lock()
	healthy = false
	mu.Unlock()
	body = getJSON(t, h, "/healthz", http.StatusOK)
	if body["status"] != "degraded" {
		t.Fatalf("status with failing probe = %v, want degraded at HTTP 200", body["status"])
	}

	metrics := getJSON(t, h, "/metrics", http.StatusOK)
	if _, ok := metrics["components"].(map[string]any); !ok {
		t.Fatalf("metrics lacks components: %v", metrics)
	}
}

// TestInsertResultAndWalk: results inserted from outside the solve path
// (the re-gauging loop) surface through CachedPlacements and serve
// subsequent identical requests as cache hits.
func TestInsertResultAndWalk(t *testing.T) {
	srv := newTestServer(t, Config{})
	h := srv.Handler()

	req := MapRequest{Workload: "LU", Procs: 64, Seed: 1}
	var first MapResponse
	postMap(t, h, req, http.StatusOK, &first)

	entries := srv.CachedPlacements()
	if len(entries) != 1 {
		t.Fatalf("cached placements = %d, want 1", len(entries))
	}
	if entries[0].Request == nil || entries[0].Request.Workload != "LU" {
		t.Fatalf("cached request not retained: %+v", entries[0].Request)
	}

	// Re-insert a doctored result under the current snapshot version and
	// check the next identical request returns it from the cache.
	doctored := *entries[0].Result
	doctored.Algorithm = entries[0].Result.Algorithm + "+remap"
	srv.InsertResult(entries[0].Request, &doctored)
	var second MapResponse
	postMap(t, h, req, http.StatusOK, &second)
	if !second.Cached || second.Algorithm != doctored.Algorithm {
		t.Fatalf("follow-up = cached=%v algorithm=%q, want the inserted result", second.Cached, second.Algorithm)
	}
}
