package service

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestLRUEviction(t *testing.T) {
	c := newResultCache(2)
	c.add("a", nil, &MapResult{Digest: "a"})
	c.add("b", nil, &MapResult{Digest: "b"})
	if _, ok := c.get("a"); !ok {
		t.Fatal("a missing before eviction")
	}
	// "a" is now most recent; adding "c" evicts "b".
	c.add("c", nil, &MapResult{Digest: "c"})
	if _, ok := c.get("b"); ok {
		t.Error("b survived past capacity")
	}
	for _, k := range []string{"a", "c"} {
		if res, ok := c.get(k); !ok || res.Digest != k {
			t.Errorf("entry %q lost or corrupted", k)
		}
	}
	if c.len() != 2 {
		t.Errorf("len = %d, want 2", c.len())
	}
}

func TestSingleflightCollapsesConcurrentSolves(t *testing.T) {
	c := newResultCache(8)
	var solves atomic.Int64
	release := make(chan struct{})
	const callers = 16
	var wg sync.WaitGroup
	sharedCount := atomic.Int64{}
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, shared, err := c.do(context.Background(), "key", nil, func() (*MapResult, error) {
				solves.Add(1)
				<-release
				return &MapResult{Digest: "solved"}, nil
			})
			if err != nil {
				t.Error(err)
				return
			}
			if res.Digest != "solved" {
				t.Errorf("digest = %q", res.Digest)
			}
			if shared {
				sharedCount.Add(1)
			}
		}()
	}
	// Let every caller reach the flight before releasing the leader.
	time.Sleep(20 * time.Millisecond)
	close(release)
	wg.Wait()
	if n := solves.Load(); n != 1 {
		t.Errorf("solve executed %d times, want 1", n)
	}
	if n := sharedCount.Load(); n != callers-1 {
		t.Errorf("%d callers shared, want %d", n, callers-1)
	}
	// The result landed in the LRU.
	if _, ok := c.get("key"); !ok {
		t.Error("singleflight result not cached")
	}
}

func TestSingleflightWaiterHonorsContext(t *testing.T) {
	c := newResultCache(8)
	started := make(chan struct{})
	release := make(chan struct{})
	go func() {
		_, _, err := c.do(context.Background(), "slow", nil, func() (*MapResult, error) {
			close(started)
			<-release
			return &MapResult{}, nil
		})
		if err != nil {
			t.Error(err)
		}
	}()
	<-started
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	_, shared, err := c.do(ctx, "slow", nil, func() (*MapResult, error) {
		t.Error("waiter must not start its own solve")
		return nil, nil
	})
	// A waiter whose own deadline fires shared nothing: shared must be
	// false so the server tallies the request as a timeout, not a dedup.
	if shared || err != context.DeadlineExceeded {
		t.Errorf("waiter got shared=%v err=%v, want unshared deadline error", shared, err)
	}
	close(release)
}

func TestSingleflightErrorsAreNotCached(t *testing.T) {
	c := newResultCache(8)
	attempts := 0
	_, _, err := c.do(context.Background(), "k", nil, func() (*MapResult, error) {
		attempts++
		return nil, fmt.Errorf("boom")
	})
	if err == nil {
		t.Fatal("error swallowed")
	}
	if _, ok := c.get("k"); ok {
		t.Fatal("error cached")
	}
	res, _, err := c.do(context.Background(), "k", nil, func() (*MapResult, error) {
		attempts++
		return &MapResult{Digest: "ok"}, nil
	})
	if err != nil || res.Digest != "ok" {
		t.Fatalf("retry failed: %v", err)
	}
	if attempts != 2 {
		t.Errorf("attempts = %d, want 2", attempts)
	}
}

// TestCacheRace stresses the LRU + singleflight under concurrent mixed
// traffic; meaningful under -race.
func TestCacheRace(t *testing.T) {
	c := newResultCache(16)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("k%d", (g+i)%24)
				if i%3 == 0 {
					c.add(key, nil, &MapResult{Digest: key})
					continue
				}
				res, _, err := c.do(context.Background(), key, nil, func() (*MapResult, error) {
					return &MapResult{Digest: key}, nil
				})
				if err != nil || res.Digest != key {
					t.Errorf("do(%s): res=%v err=%v", key, res, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if c.len() > 16 {
		t.Errorf("cache grew to %d past capacity 16", c.len())
	}
}
