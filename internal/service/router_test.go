package service

import (
	"fmt"
	"testing"
)

func testPeers(n int) []string {
	peers := make([]string, n)
	for i := range peers {
		peers[i] = fmt.Sprintf("http://127.0.0.1:%d", 9001+i)
	}
	return peers
}

func TestRingOwnerIsPeerOrderIndependent(t *testing.T) {
	peers := testPeers(3)
	orders := [][]string{
		{peers[0], peers[1], peers[2]},
		{peers[2], peers[0], peers[1]},
		{peers[1], peers[2], peers[0]},
	}
	rings := make([]*Ring, len(orders))
	for i, o := range orders {
		r, err := NewRing(o)
		if err != nil {
			t.Fatal(err)
		}
		rings[i] = r
	}
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("request-%d", i)
		want := rings[0].Owner(key)
		for j := 1; j < len(rings); j++ {
			if got := rings[j].Owner(key); got != want {
				t.Fatalf("key %q: ring built from order %d owns %s, order 0 owns %s", key, j, got, want)
			}
		}
	}
}

func TestRingCoversAllPeers(t *testing.T) {
	ring, err := NewRing(testPeers(3))
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	const keys = 1000
	for i := 0; i < keys; i++ {
		counts[ring.Owner(fmt.Sprintf("key-%d", i))]++
	}
	for _, p := range ring.Peers() {
		if counts[p] == 0 {
			t.Errorf("peer %s owns no keys out of %d", p, keys)
		}
		// With 64 virtual points per peer the split should be far from
		// pathological; a very loose bound guards against a broken hash.
		if counts[p] < keys/10 {
			t.Errorf("peer %s owns only %d/%d keys", p, counts[p], keys)
		}
	}
}

// TestRingConsistentHashingStability is the property that justifies the
// ring: growing the fleet by one peer must remap only the keys the new
// peer takes over — roughly 1/(n+1) of them — never reshuffle the rest.
func TestRingConsistentHashingStability(t *testing.T) {
	small, err := NewRing(testPeers(3))
	if err != nil {
		t.Fatal(err)
	}
	big, err := NewRing(testPeers(4))
	if err != nil {
		t.Fatal(err)
	}
	added := testPeers(4)[3]
	const keys = 1000
	moved := 0
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("key-%d", i)
		before, after := small.Owner(key), big.Owner(key)
		if before == after {
			continue
		}
		if after != added {
			t.Fatalf("key %q moved %s → %s, but only the added peer %s may take keys", key, before, after, added)
		}
		moved++
	}
	if moved == 0 || moved > keys/2 {
		t.Errorf("%d/%d keys moved to the new peer, want a modest nonzero share", moved, keys)
	}
}

func TestNormalizePeerURL(t *testing.T) {
	cases := map[string]string{
		"http://a:8080":   "http://a:8080",
		"http://a:8080/":  "http://a:8080",
		" http://a:8080 ": "http://a:8080",
		"a:8080":          "http://a:8080",
		"https://b":       "https://b",
		"127.0.0.1:9001/": "http://127.0.0.1:9001",
	}
	for in, want := range cases {
		if got := NormalizePeerURL(in); got != want {
			t.Errorf("NormalizePeerURL(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestNewRingRejectsBadPeerLists(t *testing.T) {
	if _, err := NewRing(nil); err == nil {
		t.Error("empty peer list accepted")
	}
	if _, err := NewRing([]string{"http://a:1", ""}); err == nil {
		t.Error("blank peer accepted")
	}
	if _, err := NewRing([]string{"http://a:1", "http://a:1/"}); err == nil {
		t.Error("duplicate peer (modulo normalization) accepted")
	}
}

func TestRoutingKeyIgnoresSnapshotVersion(t *testing.T) {
	req := MapRequest{Workload: "LU", Procs: 16, Seed: 7}
	if RoutingKey(&req) != RoutingKey(&req) {
		t.Fatal("routing key not deterministic")
	}
	// The routing key must differ from any real cache key (which embeds a
	// store-assigned version starting at 1) so shard ownership never
	// churns on snapshot publications.
	for v := uint64(1); v <= 3; v++ {
		if RoutingKey(&req) == fingerprint(&req, v) {
			t.Fatalf("routing key collides with the cache key at snapshot v%d", v)
		}
	}
	other := req
	other.Seed = 8
	if RoutingKey(&req) == RoutingKey(&other) {
		t.Error("distinct requests share a routing key")
	}
}
