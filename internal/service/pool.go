package service

import (
	"context"
	"fmt"
	"sync"
)

// Pool is a bounded worker pool for solve jobs. Admission is
// non-blocking up to the queue bound — a full queue rejects immediately
// (load shedding) rather than letting latency grow without bound — and a
// caller whose context expires before its job starts gets the context
// error without occupying a worker.
//
// The queue is a mutex-guarded slice rather than a channel so that a
// job whose context has already expired can be compacted out at
// admission time. With a channel queue, a burst of requests that time
// out while queued would keep their slots pinned until a worker drained
// them, shedding live traffic with spurious ErrQueueFull even though
// every queued job was already dead.
type Pool struct {
	mu      sync.Mutex
	pending []*job // FIFO; guarded by mu
	closed  bool

	// tokens is the workers' wakeup semaphore: one token per enqueued
	// job, consumed by a worker before it pops. Sends are non-blocking —
	// compaction can leave more tokens than jobs, and a worker waking to
	// an empty queue just sleeps again — but never fewer: tokens are
	// dropped only when the channel is full, i.e. holds depth tokens,
	// which is at least len(pending).
	tokens chan struct{}
	wg     sync.WaitGroup
}

type job struct {
	ctx  context.Context
	run  func()
	err  error // set before done closes when the pool skipped run
	done chan struct{}
}

// ErrQueueFull is returned by Submit when the pool's queue is at
// capacity with no dead jobs to reclaim; callers translate it to 503
// Service Unavailable.
var ErrQueueFull = fmt.Errorf("service: solve queue full")

// ErrPoolClosed is returned by Submit after Close; the daemon is
// draining.
var ErrPoolClosed = fmt.Errorf("service: pool closed")

// NewPool starts workers goroutines consuming a queue of at most
// queueDepth pending jobs.
func NewPool(workers, queueDepth int) *Pool {
	if workers < 1 {
		workers = 1
	}
	if queueDepth < 1 {
		queueDepth = 1
	}
	p := &Pool{
		pending: make([]*job, 0, queueDepth),
		tokens:  make(chan struct{}, queueDepth),
	}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go p.worker()
	}
	return p
}

func (p *Pool) worker() {
	defer p.wg.Done()
	for range p.tokens {
		p.runNext()
	}
	// Close closed the token channel; drain whatever jobs remain so the
	// shutdown barrier sees every admitted job completed.
	for p.runNext() {
	}
}

// runNext pops and executes the oldest pending job. It reports whether
// a job was present; a compacted-ahead token finds the queue empty and
// returns false. A job whose deadline already passed is not worth
// starting — its submitter stopped waiting at ctx.Done. The error is
// recorded on the job because Submit's select may observe done and
// ctx.Done simultaneously ready; done alone must not read as
// "executed".
func (p *Pool) runNext() bool {
	p.mu.Lock()
	if len(p.pending) == 0 {
		p.mu.Unlock()
		return false
	}
	j := p.pending[0]
	copy(p.pending, p.pending[1:])
	p.pending[len(p.pending)-1] = nil
	p.pending = p.pending[:len(p.pending)-1]
	p.mu.Unlock()
	if err := j.ctx.Err(); err != nil {
		j.err = err
	} else {
		j.run()
	}
	close(j.done)
	return true
}

// compactLocked removes every pending job whose context has expired,
// completing each with its context error. Called with p.mu held, at
// admission time when the queue looks full — dead jobs must not crowd
// out live traffic.
func (p *Pool) compactLocked() {
	live := p.pending[:0]
	for _, j := range p.pending {
		if err := j.ctx.Err(); err != nil {
			j.err = err
			close(j.done)
			continue
		}
		live = append(live, j)
	}
	for i := len(live); i < len(p.pending); i++ {
		p.pending[i] = nil
	}
	p.pending = live
}

// Submit enqueues run and waits until it has been executed or ctx
// expires. When ctx expires first, Submit returns the context error; if
// the job has not started yet it is skipped entirely when a worker (or
// admission-time compaction) reaches it — the closure never runs. A nil
// return guarantees run was executed. The job function must capture its
// own result delivery.
func (p *Pool) Submit(ctx context.Context, run func()) error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return ErrPoolClosed
	}
	if len(p.pending) == cap(p.tokens) {
		p.compactLocked()
	}
	if len(p.pending) == cap(p.tokens) {
		p.mu.Unlock()
		return ErrQueueFull
	}
	j := &job{ctx: ctx, run: run, done: make(chan struct{})}
	p.pending = append(p.pending, j)
	select {
	case p.tokens <- struct{}{}:
	default:
		// Channel full means depth tokens are already outstanding — at
		// least one per pending job — so a worker is guaranteed to reach
		// this job without another token.
	}
	p.mu.Unlock()
	select {
	case <-j.done:
		return j.err
	case <-ctx.Done():
		return ctx.Err()
	}
}

// QueueDepth reports the number of jobs waiting for a worker.
func (p *Pool) QueueDepth() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.pending)
}

// Close stops admission and waits for the workers to finish every job
// already queued — the drain barrier geomapd leans on after the HTTP
// listener shuts down. Close is idempotent.
func (p *Pool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	close(p.tokens)
	p.mu.Unlock()
	p.wg.Wait()
}
