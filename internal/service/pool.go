package service

import (
	"context"
	"fmt"
	"sync"
)

// Pool is a bounded worker pool for solve jobs. Admission is
// non-blocking up to the queue bound — a full queue rejects immediately
// (load shedding) rather than letting latency grow without bound — and a
// caller whose context expires before its job starts gets the context
// error without occupying a worker.
type Pool struct {
	queue chan *job
	wg    sync.WaitGroup

	mu     sync.Mutex
	closed bool
}

type job struct {
	ctx  context.Context
	run  func()
	err  error // set before done closes when the worker skipped run
	done chan struct{}
}

// ErrQueueFull is returned by Submit when the pool's queue is at
// capacity; callers translate it to 503 Service Unavailable.
var ErrQueueFull = fmt.Errorf("service: solve queue full")

// ErrPoolClosed is returned by Submit after Close; the daemon is
// draining.
var ErrPoolClosed = fmt.Errorf("service: pool closed")

// NewPool starts workers goroutines consuming a queue of at most
// queueDepth pending jobs.
func NewPool(workers, queueDepth int) *Pool {
	if workers < 1 {
		workers = 1
	}
	if queueDepth < 1 {
		queueDepth = 1
	}
	p := &Pool{queue: make(chan *job, queueDepth)}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go p.worker()
	}
	return p
}

func (p *Pool) worker() {
	defer p.wg.Done()
	for j := range p.queue {
		// A job whose deadline already passed is not worth starting;
		// its submitter stopped waiting at ctx.Done. The error is
		// recorded on the job because Submit's select may observe done
		// and ctx.Done simultaneously ready — done alone must not read
		// as "executed".
		if err := j.ctx.Err(); err != nil {
			j.err = err
		} else {
			j.run()
		}
		close(j.done)
	}
}

// Submit enqueues run and waits until it has been executed or ctx
// expires. When ctx expires first, Submit returns the context error; if
// the job has not started yet it is skipped entirely when a worker
// reaches it (the closure never runs). A nil return guarantees run was
// executed. The job function must capture its own result delivery.
func (p *Pool) Submit(ctx context.Context, run func()) error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return ErrPoolClosed
	}
	j := &job{ctx: ctx, run: run, done: make(chan struct{})}
	select {
	case p.queue <- j:
		p.mu.Unlock()
	default:
		p.mu.Unlock()
		return ErrQueueFull
	}
	select {
	case <-j.done:
		return j.err
	case <-ctx.Done():
		return ctx.Err()
	}
}

// QueueDepth reports the number of jobs waiting for a worker.
func (p *Pool) QueueDepth() int { return len(p.queue) }

// Close stops admission and waits for the workers to finish every job
// already queued — the drain barrier geomapd leans on after the HTTP
// listener shuts down. Close is idempotent.
func (p *Pool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	close(p.queue)
	p.mu.Unlock()
	p.wg.Wait()
}
