package service

import (
	"sync"
	"testing"

	"geoprocmap/internal/calib"
	"geoprocmap/internal/faults"
	"geoprocmap/internal/netmodel"
)

// testSnapshot builds a ground-truth snapshot of the paper's 4-region
// EC2 cloud with n/4 nodes per site.
func testSnapshot(t *testing.T, n int, seed int64) *Snapshot {
	t.Helper()
	cloud, err := netmodel.EvenCloud(netmodel.AmazonEC2, "m4.xlarge", netmodel.PaperEC2Regions, n/4, netmodel.Options{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return SnapshotFromCloud(cloud)
}

func TestStoreVersionsAreMonotonic(t *testing.T) {
	st, err := NewStore(testSnapshot(t, 16, 1))
	if err != nil {
		t.Fatal(err)
	}
	if got := st.Current().Version; got != 1 {
		t.Fatalf("initial version = %d, want 1", got)
	}
	last := uint64(1)
	for i := 0; i < 5; i++ {
		v, err := st.Publish(testSnapshot(t, 16, int64(i+2)))
		if err != nil {
			t.Fatal(err)
		}
		if v <= last {
			t.Fatalf("version %d not above %d", v, last)
		}
		last = v
		if st.Current().Version != v {
			t.Fatalf("Current().Version = %d after publishing %d", st.Current().Version, v)
		}
	}
}

func TestStoreRejectsInvalidSnapshots(t *testing.T) {
	good := testSnapshot(t, 16, 1)
	st, err := NewStore(good)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Publish(nil); err == nil {
		t.Error("nil snapshot accepted")
	}
	bad := *good
	bad.BT = nil
	if _, err := st.Publish(&bad); err == nil {
		t.Error("nil-BT snapshot accepted")
	}
	// Topology changes are not hot-swappable.
	other := testSnapshot(t, 16, 1)
	other.Capacity = other.Capacity[:3]
	other.PC = other.PC[:3]
	if _, err := st.Publish(other); err == nil {
		t.Error("site-count change accepted")
	}
	if st.Current().Version != 1 {
		t.Errorf("failed publications advanced the version to %d", st.Current().Version)
	}
}

// TestStoreSwapRace hammers Current() from many readers while snapshots
// publish concurrently; run under -race this is the atomic-swap safety
// test the acceptance criteria name.
func TestStoreSwapRace(t *testing.T) {
	st, err := NewStore(testSnapshot(t, 16, 1))
	if err != nil {
		t.Fatal(err)
	}
	fresh := make([]*Snapshot, 8)
	for i := range fresh {
		fresh[i] = testSnapshot(t, 16, int64(i+10))
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 8; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var lastSeen uint64
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap := st.Current()
				if snap.Version < lastSeen {
					t.Errorf("version went backwards: %d after %d", snap.Version, lastSeen)
					return
				}
				lastSeen = snap.Version
				// Touch the matrices: immutability means this is safe
				// even while publications land.
				_ = snap.LT.At(0, 1)
				_ = snap.BT.At(1, 0)
			}
		}()
	}
	for i := 0; i < len(fresh); i++ {
		if _, err := st.Publish(fresh[i]); err != nil {
			t.Error(err)
		}
	}
	close(stop)
	wg.Wait()
	if got := st.Current().Version; got != uint64(1+len(fresh)) {
		t.Errorf("final version = %d, want %d", got, 1+len(fresh))
	}
}

func TestSnapshotFromCalibration(t *testing.T) {
	cloud, err := netmodel.PaperCloud(1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := calib.Calibrate(cloud, calib.Options{Seed: 1, Days: 1, SamplesPerDay: 3})
	if err != nil {
		t.Fatal(err)
	}
	snap, err := SnapshotFromCalibration(cloud, res)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Source != "calibration" {
		t.Errorf("source = %q", snap.Source)
	}
	if snap.LT.At(0, 1) != res.LT.At(0, 1) {
		t.Error("calibrated LT not carried over")
	}
	if err := snap.validate(); err != nil {
		t.Errorf("calibrated snapshot invalid: %v", err)
	}
	if _, err := SnapshotFromCalibration(cloud, nil); err == nil {
		t.Error("nil result accepted")
	}
}

func TestWithFaultReport(t *testing.T) {
	base := testSnapshot(t, 16, 1)
	rep := &faults.Report{
		Schedule:      "test",
		DeadSites:     []int{2},
		DegradedPairs: [][2]int{{0, 1}, {0, 2}},
	}
	next := base.WithFaultReport(rep)
	if next == base {
		t.Fatal("WithFaultReport must return a fresh snapshot")
	}
	// Degraded pair (0,1): latency up, bandwidth down by DegradeFactor.
	if got, want := next.LT.At(0, 1), base.LT.At(0, 1)*DegradeFactor; got != want {
		t.Errorf("degraded LT(0,1) = %g, want %g", got, want)
	}
	if got, want := next.BT.At(0, 1), base.BT.At(0, 1)/DegradeFactor; got != want {
		t.Errorf("degraded BT(0,1) = %g, want %g", got, want)
	}
	// Dead site 2: every touching link carries the dead penalty, even
	// the pair (0,2) that was also listed as degraded.
	if got, want := next.LT.At(0, 2), base.LT.At(0, 2)*netmodel.DeadLinkPenalty; got != want {
		t.Errorf("dead LT(0,2) = %g, want %g", got, want)
	}
	if got, want := next.BT.At(3, 2), base.BT.At(3, 2)/netmodel.DeadLinkPenalty; got != want {
		t.Errorf("dead BT(3,2) = %g, want %g", got, want)
	}
	// Untouched links are untouched.
	if next.LT.At(0, 3) != base.LT.At(0, 3) || next.BT.At(3, 0) != base.BT.At(3, 0) {
		t.Error("healthy link modified")
	}
	// The receiver must be unmodified.
	fresh := testSnapshot(t, 16, 1)
	if base.LT.At(0, 1) != fresh.LT.At(0, 1) || base.BT.At(0, 2) != fresh.BT.At(0, 2) {
		t.Error("WithFaultReport mutated its receiver")
	}
	// Bandwidths stay strictly positive, so the snapshot is publishable.
	if err := next.validate(); err != nil {
		t.Errorf("fault-degraded snapshot invalid: %v", err)
	}
	// An empty report degrades nothing.
	clean := base.WithFaultReport(&faults.Report{})
	if clean.LT.At(0, 1) != base.LT.At(0, 1) || len(clean.Degraded) != 0 {
		t.Error("empty report changed the matrices")
	}
}

// TestWithFaultReportReplacesDegraded checks that a derived snapshot's
// Degraded list is the report's fault picture alone — not an extension
// of the receiver's list, and never sharing its backing array (two
// concurrent derivations from one snapshot must not write into each
// other or into the published receiver).
func TestWithFaultReportReplacesDegraded(t *testing.T) {
	base := testSnapshot(t, 16, 1)
	base.Degraded = [][2]int{{2, 3}, {3, 2}}

	a := base.WithFaultReport(&faults.Report{DegradedPairs: [][2]int{{0, 1}}})
	b := base.WithFaultReport(&faults.Report{DegradedPairs: [][2]int{{1, 0}}})
	if len(a.Degraded) != 1 || a.Degraded[0] != [2]int{0, 1} {
		t.Errorf("a.Degraded = %v, want the report's pairs only", a.Degraded)
	}
	if len(b.Degraded) != 1 || b.Degraded[0] != [2]int{1, 0} {
		t.Errorf("b.Degraded = %v, want the report's pairs only", b.Degraded)
	}
	if len(base.Degraded) != 2 || base.Degraded[0] != [2]int{2, 3} || base.Degraded[1] != [2]int{3, 2} {
		t.Errorf("receiver's Degraded mutated: %v", base.Degraded)
	}
}

// TestStoreBaseSkipsDerivedSnapshots checks the anti-compounding
// contract: Base() keeps pointing at the last measured snapshot while
// fault-report snapshots publish, so re-deriving the same report yields
// the same penalties (×DegradeFactor, not ×DegradeFactor²).
func TestStoreBaseSkipsDerivedSnapshots(t *testing.T) {
	truth := testSnapshot(t, 16, 1)
	want := truth.LT.At(0, 1) * DegradeFactor
	st, err := NewStore(truth)
	if err != nil {
		t.Fatal(err)
	}
	if st.Base() != st.Current() {
		t.Fatal("fresh store's base is not its current snapshot")
	}
	rep := &faults.Report{DegradedPairs: [][2]int{{0, 1}}}
	for i := 0; i < 3; i++ {
		if _, err := st.Publish(st.Base().WithFaultReport(rep)); err != nil {
			t.Fatal(err)
		}
		if got := st.Current().LT.At(0, 1); got != want {
			t.Fatalf("after report %d, LT(0,1) = %g, want %g (penalties compounded)", i+1, got, want)
		}
		if st.Base() != truth {
			t.Fatalf("after report %d, base drifted off the measured snapshot", i+1)
		}
	}
	// A measured publication (calibration/admin) becomes the new base.
	measured := testSnapshot(t, 16, 2)
	if _, err := st.Publish(measured); err != nil {
		t.Fatal(err)
	}
	if st.Base() != measured {
		t.Error("measured snapshot did not become the base")
	}
}

// TestStorePublishAtOrdering covers the replication path: versions are
// adopted exactly as assigned by the origin, stale replays are ignored
// without error, gaps are jumped, and local publications continue from
// whatever version the store last saw.
func TestStorePublishAtOrdering(t *testing.T) {
	st, err := NewStore(testSnapshot(t, 16, 1)) // v1
	if err != nil {
		t.Fatal(err)
	}

	newer := testSnapshot(t, 16, 2)
	applied, err := st.PublishAt(newer, 2)
	if err != nil || !applied {
		t.Fatalf("PublishAt(v2) = (%v, %v), want applied", applied, err)
	}
	if st.Current().Version != 2 || st.Current() != newer {
		t.Fatalf("current is v%d, want the replicated v2", st.Current().Version)
	}

	// A duplicate or reordered replay must be a no-op, not an error.
	stale := testSnapshot(t, 16, 3)
	for _, v := range []uint64{1, 2} {
		applied, err := st.PublishAt(stale, v)
		if err != nil || applied {
			t.Fatalf("PublishAt(stale v%d) = (%v, %v), want silent no-op", v, applied, err)
		}
	}
	if st.Current() != newer {
		t.Fatal("stale replay replaced the current snapshot")
	}

	// A receiver that missed v3 and v4 jumps straight to v5.
	jump := testSnapshot(t, 16, 4)
	if applied, err := st.PublishAt(jump, 5); err != nil || !applied {
		t.Fatalf("PublishAt(v5 across a gap) = (%v, %v), want applied", applied, err)
	}
	// Local publication continues after the adopted version.
	v, err := st.Publish(testSnapshot(t, 16, 5))
	if err != nil {
		t.Fatal(err)
	}
	if v != 6 {
		t.Errorf("Publish after adopting v5 assigned v%d, want v6", v)
	}

	// Version 0 and topology mismatches are rejected.
	if _, err := st.PublishAt(testSnapshot(t, 16, 6), 0); err == nil {
		t.Error("PublishAt accepted version 0")
	}
	smallCloud, err := netmodel.EvenCloud(netmodel.AmazonEC2, "m4.xlarge", netmodel.PaperEC2Regions[:2], 4, netmodel.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.PublishAt(SnapshotFromCloud(smallCloud), 99); err == nil {
		t.Error("PublishAt accepted a snapshot with a different site count")
	}
}
