// Package service is the mapping-as-a-service layer: a long-running
// daemon core that answers geo-distributed process-mapping queries over
// HTTP/JSON instead of one problem per CLI invocation.
//
// The paper's economics make this shape natural: site-level LT/BT
// calibration costs M(M−1) probe sessions (minutes), after which solving
// a mapping is milliseconds — so one slowly-refreshed network model can
// serve many mapping queries. The package separates the two rates
// explicitly:
//
//   - a Store of immutable, monotonically versioned network Snapshots
//     (LT/BT/PC/capacities), atomically swapped when calibration or a
//     fault report lands, read lock-free on the hot path;
//   - a bounded worker Pool that solves validated problems under
//     per-request context deadlines;
//   - a fingerprint-keyed LRU result cache with singleflight
//     deduplication, keyed on the canonical hash of the request *and* the
//     snapshot version, so a snapshot swap naturally invalidates results
//     without any explicit flush.
//
// cmd/geomapd wires the package to an HTTP listener and signal handling;
// cmd/geoload is the closed-loop benchmark client.
package service

import (
	"fmt"
	"sync"
	"sync/atomic"

	"geoprocmap/internal/calib"
	"geoprocmap/internal/faults"
	"geoprocmap/internal/geo"
	"geoprocmap/internal/mat"
	"geoprocmap/internal/netmodel"
)

// Snapshot is one immutable version of the network model: everything a
// mapping request needs besides its communication pattern. Snapshots are
// never mutated after publication — degrading a snapshot produces a new
// one — so readers need no locks and responses can name the exact
// version they were solved against.
type Snapshot struct {
	// Version is assigned by the Store at publication, strictly
	// increasing from 1.
	Version uint64
	// Source records where the matrices came from ("ground-truth",
	// "calibration", "fault-report", "admin", …) for /healthz and logs.
	Source string
	// LT and BT are the M×M latency (seconds) and bandwidth (bytes/s)
	// matrices. Treated as read-only.
	LT, BT *mat.Matrix
	// PC holds the physical coordinates of each site.
	PC []geo.LatLon
	// Capacity is the per-site node count (the paper's I vector).
	Capacity mat.IntVec
	// SiteNames labels sites in human-facing output (region names).
	SiteNames []string
	// Degraded lists directed site pairs whose estimates are known to be
	// unreliable (from calib.Result.Degraded or a faults.Report).
	Degraded [][2]int

	// derived marks snapshots produced by WithFaultReport: penalty
	// overlays on a measured model. The Store never treats them as the
	// base for later fault reports, so re-posting a report cannot
	// compound penalties.
	derived bool
}

// M returns the number of sites.
func (s *Snapshot) M() int { return len(s.Capacity) }

// validate checks the structural invariants a published snapshot must
// hold so every request built from it yields a valid core.Problem.
func (s *Snapshot) validate() error {
	m := s.M()
	if m == 0 {
		return fmt.Errorf("service: snapshot has no sites")
	}
	if s.LT == nil || s.BT == nil {
		return fmt.Errorf("service: snapshot has nil LT/BT")
	}
	if !s.LT.IsSquare() || s.LT.Rows() != m || !s.BT.IsSquare() || s.BT.Rows() != m {
		return fmt.Errorf("service: snapshot matrices are %d×%d and %d×%d, want %d×%d",
			s.LT.Rows(), s.LT.Cols(), s.BT.Rows(), s.BT.Cols(), m, m)
	}
	if len(s.PC) != m {
		return fmt.Errorf("service: snapshot has %d coordinates for %d sites", len(s.PC), m)
	}
	for k := 0; k < m; k++ {
		if s.Capacity[k] <= 0 {
			return fmt.Errorf("service: site %d capacity %d, want > 0", k, s.Capacity[k])
		}
		for l := 0; l < m; l++ {
			if s.BT.At(k, l) <= 0 {
				return fmt.Errorf("service: snapshot BT(%d,%d) = %g, want > 0", k, l, s.BT.At(k, l))
			}
			if s.LT.At(k, l) < 0 {
				return fmt.Errorf("service: snapshot LT(%d,%d) = %g, want >= 0", k, l, s.LT.At(k, l))
			}
		}
	}
	return nil
}

// SnapshotFromCloud builds an unpublished snapshot from a cloud's
// ground-truth matrices (the daemon's bootstrap model before the first
// calibration lands).
func SnapshotFromCloud(c *netmodel.Cloud) *Snapshot {
	names := make([]string, len(c.Sites))
	for i, s := range c.Sites {
		names[i] = s.Region.Name
	}
	return &Snapshot{
		Source:    "ground-truth",
		LT:        c.LT.Clone(),
		BT:        c.BT.Clone(),
		PC:        c.Coordinates(),
		Capacity:  c.Capacity(),
		SiteNames: names,
	}
}

// SnapshotFromCalibration builds an unpublished snapshot carrying a
// calibration result's estimated matrices and degraded-pair flags. The
// cloud supplies topology (coordinates, capacities, names); the result
// supplies the measured LT/BT.
func SnapshotFromCalibration(c *netmodel.Cloud, res *calib.Result) (*Snapshot, error) {
	if res == nil || res.LT == nil || res.BT == nil {
		return nil, fmt.Errorf("service: nil calibration result")
	}
	if res.LT.Rows() != c.M() {
		return nil, fmt.Errorf("service: calibration is %d×%d for a %d-site cloud", res.LT.Rows(), res.LT.Cols(), c.M())
	}
	s := SnapshotFromCloud(c)
	s.Source = "calibration"
	s.LT = res.LT.Clone()
	s.BT = res.BT.Clone()
	s.Degraded = res.DegradedPairs()
	return s, nil
}

// WithFaultReport derives a new unpublished snapshot from s with the
// report's observed faults folded in: every degraded pair's bandwidth is
// scaled down and latency up by DegradeFactor, and every link touching a
// dead site carries netmodel.DeadLinkPenalty, steering cost-driven
// mappers away exactly as netmodel.FaultView does for simulations. The
// receiver is not modified; its Degraded list is replaced, not extended
// — the report is the full current fault picture. Derive from a
// measured snapshot (Store.Base), never from an earlier fault-report
// snapshot, or penalties compound.
func (s *Snapshot) WithFaultReport(rep *faults.Report) *Snapshot {
	out := *s
	out.Version = 0
	out.Source = "fault-report"
	out.derived = true
	out.LT = s.LT.Clone()
	out.BT = s.BT.Clone()
	out.Degraded = nil
	if rep.Empty() {
		return &out
	}
	m := s.M()
	dead := make(map[int]bool, len(rep.DeadSites))
	for _, site := range rep.DeadSites {
		if site >= 0 && site < m {
			dead[site] = true
		}
	}
	apply := func(k, l int, factor float64) {
		out.LT.Set(k, l, out.LT.At(k, l)*factor)
		out.BT.Set(k, l, out.BT.At(k, l)/factor)
	}
	seen := map[[2]int]bool{}
	for _, p := range rep.DegradedPairs {
		k, l := p[0], p[1]
		if k < 0 || k >= m || l < 0 || l >= m || seen[p] {
			continue
		}
		seen[p] = true
		if dead[k] || dead[l] {
			continue // the site sweep below applies the full penalty
		}
		apply(k, l, DegradeFactor)
		out.Degraded = append(out.Degraded, p)
	}
	for k := 0; k < m; k++ {
		for l := 0; l < m; l++ {
			if dead[k] || dead[l] {
				apply(k, l, netmodel.DeadLinkPenalty)
				out.Degraded = append(out.Degraded, [2]int{k, l})
			}
		}
	}
	return &out
}

// DegradeFactor is the pessimism applied to a link a fault report flags
// as degraded but not dead: latency ×4, bandwidth ÷4 — enough to steer
// placements off the link without declaring it unusable.
const DegradeFactor = 4.0

// Store holds the current network snapshot and swaps it atomically.
// Reads are lock-free (a single atomic pointer load on the request hot
// path); publications serialize under a mutex only to assign strictly
// increasing versions.
type Store struct {
	mu      sync.Mutex // serializes Publish
	version uint64
	cur     atomic.Pointer[Snapshot]
	// base is the latest measured (non-derived) snapshot: ground truth,
	// calibration, or admin matrices. Fault reports derive from it so
	// periodic re-gauging re-applies penalties to measurements instead
	// of stacking them on an already-penalized model.
	base atomic.Pointer[Snapshot]
}

// NewStore creates a store and publishes the initial snapshot.
func NewStore(initial *Snapshot) (*Store, error) {
	st := &Store{}
	if _, err := st.Publish(initial); err != nil {
		return nil, err
	}
	return st, nil
}

// Current returns the latest published snapshot. The result is immutable
// and safe to use for the whole lifetime of a request even if a newer
// snapshot is published mid-solve.
func (st *Store) Current() *Snapshot { return st.cur.Load() }

// Base returns the latest published snapshot carrying measured or
// administered matrices — the one fault reports should derive from. If
// no measured snapshot has been published (the initial snapshot was
// itself derived), it falls back to Current.
func (st *Store) Base() *Snapshot {
	if b := st.base.Load(); b != nil {
		return b
	}
	return st.cur.Load()
}

// Publish validates snap, assigns it the next version, and makes it the
// current snapshot. The snapshot must not be mutated afterwards. The new
// snapshot must describe the same number of sites as the current one
// (topology changes need a daemon restart, not a hot swap).
func (st *Store) Publish(snap *Snapshot) (uint64, error) {
	if snap == nil {
		return 0, fmt.Errorf("service: nil snapshot")
	}
	if err := snap.validate(); err != nil {
		return 0, err
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if cur := st.cur.Load(); cur != nil && cur.M() != snap.M() {
		return 0, fmt.Errorf("service: snapshot has %d sites, store is serving %d", snap.M(), cur.M())
	}
	st.version++
	snap.Version = st.version
	st.cur.Store(snap)
	if !snap.derived {
		st.base.Store(snap)
	}
	return snap.Version, nil
}

// PublishAt installs snap at exactly the given version — the
// replication path. The origin daemon assigns a version with Publish
// and fans the snapshot out; receivers apply it here. Ordering makes
// replays idempotent: a version at or below the store's current one is
// ignored (applied=false, no error), so duplicated or reordered
// replication messages cannot regress the model, and a newer version is
// adopted verbatim even across gaps (a peer that missed v2 jumps
// straight to v3 — it catches up on the next publication that reaches
// it).
func (st *Store) PublishAt(snap *Snapshot, version uint64) (applied bool, err error) {
	if snap == nil {
		return false, fmt.Errorf("service: nil snapshot")
	}
	if version == 0 {
		return false, fmt.Errorf("service: replicated snapshot needs a version")
	}
	if err := snap.validate(); err != nil {
		return false, err
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if cur := st.cur.Load(); cur != nil && cur.M() != snap.M() {
		return false, fmt.Errorf("service: snapshot has %d sites, store is serving %d", snap.M(), cur.M())
	}
	if version <= st.version {
		return false, nil
	}
	st.version = version
	snap.Version = version
	st.cur.Store(snap)
	if !snap.derived {
		st.base.Store(snap)
	}
	return true, nil
}
