package service

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestPoolRunsJobs(t *testing.T) {
	p := NewPool(2, 4)
	defer p.Close()
	var ran atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := p.Submit(context.Background(), func() { ran.Add(1) }); err != nil {
				// Queue-full sheds are legitimate under this burst; only
				// executed jobs are counted below.
				if !errors.Is(err, ErrQueueFull) {
					t.Error(err)
				}
			}
		}()
	}
	wg.Wait()
	if ran.Load() == 0 {
		t.Error("no job executed")
	}
}

func TestPoolShedsWhenQueueFull(t *testing.T) {
	p := NewPool(1, 1)
	defer p.Close()
	block := make(chan struct{})
	started := make(chan struct{})
	go func() {
		_ = p.Submit(context.Background(), func() { close(started); <-block })
	}()
	<-started
	// Worker busy; fill the single queue slot.
	go func() {
		_ = p.Submit(context.Background(), func() {})
	}()
	// Wait for the filler to occupy the slot, then expect a shed. The
	// worker is parked inside the first job, so the slot cannot drain.
	deadline := time.Now().Add(2 * time.Second)
	for p.QueueDepth() < 1 {
		if time.Now().After(deadline) {
			t.Fatal("filler never occupied the queue slot")
		}
		time.Sleep(time.Millisecond)
	}
	if err := p.Submit(context.Background(), func() {}); !errors.Is(err, ErrQueueFull) {
		t.Errorf("err = %v, want ErrQueueFull", err)
	}
	close(block)
}

func TestPoolHonorsContextBeforeStart(t *testing.T) {
	p := NewPool(1, 4)
	defer p.Close()
	block := make(chan struct{})
	started := make(chan struct{})
	go func() {
		_ = p.Submit(context.Background(), func() { close(started); <-block })
	}()
	<-started
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := false
	err := p.Submit(ctx, func() { ran = true })
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
	close(block)
	p.Close() // drain: the skipped job's slot is consumed without running it
	if ran {
		t.Error("expired job executed")
	}
}

func TestPoolCloseDrainsQueuedJobs(t *testing.T) {
	p := NewPool(1, 8)
	var ran atomic.Int64
	block := make(chan struct{})
	started := make(chan struct{})
	go func() {
		_ = p.Submit(context.Background(), func() { close(started); <-block; ran.Add(1) })
	}()
	<-started
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = p.Submit(context.Background(), func() { ran.Add(1) })
		}()
	}
	// Wait for the submitters to enqueue behind the blocked worker.
	deadline := time.Now().Add(time.Second)
	for p.QueueDepth() < 4 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	close(block)
	p.Close()
	wg.Wait()
	if got := ran.Load(); got != 5 {
		t.Errorf("drained %d jobs, want 5", got)
	}
	if err := p.Submit(context.Background(), func() {}); !errors.Is(err, ErrPoolClosed) {
		t.Errorf("post-close Submit err = %v, want ErrPoolClosed", err)
	}
	p.Close() // idempotent
}

// TestPoolSkippedJobNeverReturnsNil recreates the race where a queued
// job's context expires just as a worker reaches it: both j.done and
// ctx.Done() become ready and Submit's select picks either. Whichever
// branch wins, a job that never executed must not report success.
func TestPoolSkippedJobNeverReturnsNil(t *testing.T) {
	for i := 0; i < 200; i++ {
		p := NewPool(1, 4)
		release := make(chan struct{})
		started := make(chan struct{})
		go func() {
			_ = p.Submit(context.Background(), func() { close(started); <-release })
		}()
		<-started
		ctx, cancel := context.WithCancel(context.Background())
		var ran atomic.Bool
		errCh := make(chan error, 1)
		go func() {
			errCh <- p.Submit(ctx, func() { ran.Store(true) })
		}()
		// Cancel and unblock the worker together so the skip and the
		// caller's ctx.Done race.
		cancel()
		close(release)
		if err := <-errCh; err == nil && !ran.Load() {
			t.Fatal("Submit returned nil for a job that never ran")
		}
		p.Close()
	}
}

// TestPoolCompactsExpiredJobsUnderPressure is the regression test for
// the queue-slot leak: jobs whose contexts expired while queued used to
// pin their slots until a worker drained them, so a burst of timed-out
// requests shed live traffic with spurious ErrQueueFull. Admission-time
// compaction must reclaim dead slots instead.
func TestPoolCompactsExpiredJobsUnderPressure(t *testing.T) {
	const depth = 4
	p := NewPool(1, depth)
	block := make(chan struct{})
	started := make(chan struct{})
	go func() {
		_ = p.Submit(context.Background(), func() { close(started); <-block })
	}()
	<-started

	// Fill every queue slot with jobs that are then cancelled: each
	// submitter returns with its context error, but its job still sits in
	// the queue because the only worker is parked.
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	var deadRan atomic.Int64
	for i := 0; i < depth; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			err := p.Submit(ctx, func() { deadRan.Add(1) })
			if !errors.Is(err, context.Canceled) {
				t.Errorf("cancelled submitter got %v, want context.Canceled", err)
			}
		}()
	}
	deadline := time.Now().Add(2 * time.Second)
	for p.QueueDepth() < depth {
		if time.Now().After(deadline) {
			t.Fatal("fillers never occupied the queue")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	wg.Wait()

	// The queue is nominally full, but every occupant is dead. A live
	// request must still be admitted — this returned ErrQueueFull before
	// the fix.
	var liveRan atomic.Bool
	liveErr := make(chan error, 1)
	go func() {
		liveErr <- p.Submit(context.Background(), func() { liveRan.Store(true) })
	}()
	// The live submitter blocks waiting for the parked worker; give its
	// admission a moment, then verify compaction left only the live job.
	deadline = time.Now().Add(2 * time.Second)
	for p.QueueDepth() != 1 {
		if time.Now().After(deadline) {
			t.Fatalf("queue depth %d after compacting admission, want 1", p.QueueDepth())
		}
		time.Sleep(time.Millisecond)
	}
	close(block)
	if err := <-liveErr; err != nil {
		t.Fatalf("live submit err = %v, want admission (nil)", err)
	}
	if !liveRan.Load() {
		t.Error("live job admitted but never executed")
	}
	p.Close()
	if n := deadRan.Load(); n != 0 {
		t.Errorf("%d compacted jobs executed, want 0", n)
	}
}

// TestPoolStress floods a small pool from many goroutines with mixed
// deadlines; meaningful under -race.
func TestPoolStress(t *testing.T) {
	p := NewPool(4, 64)
	defer p.Close()
	var wg sync.WaitGroup
	var executed atomic.Int64
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				ctx := context.Background()
				if i%5 == 0 {
					var cancel context.CancelFunc
					ctx, cancel = context.WithTimeout(ctx, time.Microsecond)
					defer cancel()
				}
				err := p.Submit(ctx, func() { executed.Add(1) })
				if err != nil && !errors.Is(err, ErrQueueFull) &&
					!errors.Is(err, context.DeadlineExceeded) && !errors.Is(err, context.Canceled) {
					t.Errorf("unexpected submit error: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if executed.Load() == 0 {
		t.Error("stress executed nothing")
	}
}
