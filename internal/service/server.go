package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"sort"
	"sync"
	"time"

	"geoprocmap/internal/apps"
	"geoprocmap/internal/comm"
	"geoprocmap/internal/faults"
	"geoprocmap/internal/mat"
)

// Config assembles a Server. Zero values select the noted defaults.
type Config struct {
	// Store supplies network snapshots; required.
	Store *Store
	// Workers is the solver pool size (default 4).
	Workers int
	// SolverWorkers is the per-solve order-search parallelism handed to
	// the geo mapper's Workers knob. Zero derives max(1, GOMAXPROCS /
	// Workers). Because pool workers run solves concurrently, the product
	// Workers × SolverWorkers is clamped to GOMAXPROCS so a saturated pool
	// cannot oversubscribe the machine; placements are byte-identical at
	// every setting, so the clamp never changes answers.
	SolverWorkers int
	// QueueDepth bounds pending solves before requests are shed with
	// 503 (default 4 × Workers).
	QueueDepth int
	// CacheSize bounds the result LRU (default 1024 entries).
	CacheSize int
	// MaxProcs is the largest accepted process count (default 4096).
	MaxProcs int
	// DefaultDeadline applies to requests that set no deadline_ms
	// (default 30 s).
	DefaultDeadline time.Duration
	// MaxStaleness degrades /healthz to 503 once the current snapshot has
	// been the newest one for longer than this — the operator-visible
	// symptom of a stuck or frozen re-gauging loop. Zero disables the
	// check (snapshot age is still reported).
	MaxStaleness time.Duration
	// Now supplies the staleness clock (default time.Now). Tests inject a
	// monotonic fake so staleness transitions are exact, not sleep-timed.
	Now func() time.Time
	// Cluster enables the multi-node mode: requests this daemon does not
	// own consult the shard owner before solving locally, and snapshot
	// publications fan out to the fleet. Nil serves single-node.
	Cluster *Cluster
	// Logf receives operational log lines; nil discards them.
	Logf func(format string, args ...any)
}

// StatusFunc supplies an auxiliary status block rendered under its name
// in /healthz and /metrics (e.g. the re-gauging loop's state). ok=false
// marks the daemon "degraded" in /healthz without changing the HTTP
// status — only snapshot staleness escalates to 503, because a degraded
// gauger with a fresh snapshot is still serving sound placements.
type StatusFunc func() (v any, ok bool)

// Server is the mapping service: stateless HTTP handlers over the
// snapshot store, solver pool, and result cache. Create with NewServer,
// mount Handler on a listener, and Close to drain.
type Server struct {
	store   *Store
	cache   *resultCache
	pool    *Pool
	metrics *Metrics
	cluster *Cluster // nil in single-node mode

	maxProcs        int
	defaultDeadline time.Duration
	maxStaleness    time.Duration
	poolWorkers     int
	solverWorkers   int
	logf            func(format string, args ...any)
	now             func() time.Time
	started         time.Time

	// obsMu guards the lazy staleness observation: the first read that
	// sees a new snapshot version stamps it with the injected clock, and
	// age is measured from that stamp. Observing in the read path (not in
	// Store.Publish) keeps the store free of clock calls, which matters
	// because the re-gauging loop publishes from deterministic roots.
	obsMu      sync.Mutex
	obsVersion uint64
	obsAt      time.Time

	// statusMu guards the registered auxiliary status probes.
	statusMu     sync.Mutex
	statusProbes map[string]StatusFunc

	// graphs memoizes profiled workload patterns keyed by
	// "workload/procs/iters"; profiling LU at n=64 costs milliseconds
	// but doing it per request would dominate cached-path latency.
	graphMu sync.Mutex
	graphs  map[string]*comm.Graph

	// solveHook, when non-nil, runs inside every executed solve; tests
	// use it to inject latency and synchronization.
	solveHook func()
}

// NewServer wires the service together.
func NewServer(cfg Config) (*Server, error) {
	if cfg.Store == nil {
		return nil, fmt.Errorf("service: Config.Store is required")
	}
	if cfg.Workers == 0 {
		cfg.Workers = 4
	}
	if cfg.QueueDepth == 0 {
		cfg.QueueDepth = 4 * cfg.Workers
	}
	if cfg.CacheSize == 0 {
		cfg.CacheSize = 1024
	}
	if cfg.MaxProcs == 0 {
		cfg.MaxProcs = 4096
	}
	if cfg.DefaultDeadline == 0 {
		cfg.DefaultDeadline = 30 * time.Second
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	if cfg.MaxStaleness < 0 {
		return nil, fmt.Errorf("service: MaxStaleness = %v, want >= 0", cfg.MaxStaleness)
	}
	if cfg.SolverWorkers < 0 {
		return nil, fmt.Errorf("service: SolverWorkers = %d, want >= 0", cfg.SolverWorkers)
	}
	solverWorkers := clampSolverWorkers(cfg.Workers, cfg.SolverWorkers, runtime.GOMAXPROCS(0))
	if cfg.SolverWorkers > 0 && solverWorkers != cfg.SolverWorkers {
		cfg.Logf("solver workers clamped %d → %d: %d pool workers × %d per solve would oversubscribe GOMAXPROCS=%d",
			cfg.SolverWorkers, solverWorkers, cfg.Workers, cfg.SolverWorkers, runtime.GOMAXPROCS(0))
	}
	started := cfg.Now()
	s := &Server{
		store:           cfg.Store,
		cache:           newResultCache(cfg.CacheSize),
		pool:            NewPool(cfg.Workers, cfg.QueueDepth),
		metrics:         NewMetrics(),
		cluster:         cfg.Cluster,
		maxProcs:        cfg.MaxProcs,
		defaultDeadline: cfg.DefaultDeadline,
		maxStaleness:    cfg.MaxStaleness,
		poolWorkers:     cfg.Workers,
		solverWorkers:   solverWorkers,
		logf:            cfg.Logf,
		now:             cfg.Now,
		started:         started,
		obsVersion:      cfg.Store.Current().Version,
		obsAt:           started,
		graphs:          map[string]*comm.Graph{},
		statusProbes:    map[string]StatusFunc{},
	}
	if s.cluster != nil {
		s.statusProbes["cluster"] = s.cluster.StatusProbe
	}
	return s, nil
}

// clampSolverWorkers resolves the per-solve parallelism: requested = 0
// derives a value that exactly fills the machine when every pool worker is
// busy, and an explicit request is capped by the same oversubscription
// rule (poolWorkers × solverWorkers ≤ GOMAXPROCS, floor 1).
func clampSolverWorkers(poolWorkers, requested, maxProcs int) int {
	limit := maxProcs / poolWorkers
	if limit < 1 {
		limit = 1
	}
	if requested == 0 || requested > limit {
		return limit
	}
	return requested
}

// Metrics exposes the server's counter set (geomapd logs a summary on
// shutdown).
func (s *Server) Metrics() *Metrics { return s.metrics }

// RegisterStatus attaches an auxiliary status probe rendered under name
// in /healthz and /metrics. Later registrations under the same name
// replace earlier ones.
func (s *Server) RegisterStatus(name string, fn StatusFunc) {
	s.statusMu.Lock()
	s.statusProbes[name] = fn
	s.statusMu.Unlock()
}

// CachedPlacements returns a point-in-time copy of the result cache in
// recency order — the re-gauging loop's view of the placements clients
// are currently acting on.
func (s *Server) CachedPlacements() []CachedPlacement { return s.cache.walk() }

// InsertResult stores a (request, result) pair in the result cache under
// the fingerprint of the request against res.SnapshotVersion. Entries for
// older snapshot versions need no eviction — their keys simply stop
// matching. The re-gauging loop uses this to install remapped placements
// so subsequent identical requests hit the refreshed result.
func (s *Server) InsertResult(req *MapRequest, res *MapResult) string {
	key := fingerprint(req, res.SnapshotVersion)
	s.cache.add(key, req, res)
	return key
}

// GraphProvider exposes the server's memoizing workload profiler for
// out-of-band problem rebuilds (the re-gauging loop).
func (s *Server) GraphProvider() GraphFunc { return s.graphFor }

// snapshotAge reports how long the current snapshot has been the newest
// one, as observed by the read path: the first call that sees a new
// version stamps it with the injected clock, and subsequent calls measure
// from that stamp.
func (s *Server) snapshotAge(now time.Time) (uint64, time.Duration) {
	cur := s.store.Current()
	s.obsMu.Lock()
	defer s.obsMu.Unlock()
	if cur.Version != s.obsVersion {
		s.obsVersion = cur.Version
		s.obsAt = now
	}
	return cur.Version, now.Sub(s.obsAt)
}

// statusBlocks evaluates the registered probes in name order, returning
// the rendered map and whether every probe reported healthy.
func (s *Server) statusBlocks() (map[string]any, bool) {
	s.statusMu.Lock()
	names := make([]string, 0, len(s.statusProbes))
	for name := range s.statusProbes {
		names = append(names, name)
	}
	probes := make([]StatusFunc, 0, len(names))
	sort.Strings(names)
	for _, name := range names {
		probes = append(probes, s.statusProbes[name])
	}
	s.statusMu.Unlock()
	if len(names) == 0 {
		return nil, true
	}
	out := make(map[string]any, len(names))
	allOK := true
	for i, name := range names {
		v, ok := probes[i]()
		out[name] = v
		if !ok {
			allOK = false
		}
	}
	return out, allOK
}

// Close drains the solver pool: admission stops, queued jobs finish.
// Call after the HTTP listener has stopped accepting connections.
func (s *Server) Close() { s.pool.Close() }

// Handler returns the service's route table.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/map", s.handleMap)
	mux.HandleFunc("GET /v1/snapshot", s.handleSnapshotGet)
	mux.HandleFunc("POST /admin/snapshot", s.handleSnapshotPost)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

// maxBodyBytes bounds request bodies; an explicit 8192-process edge list
// fits comfortably.
const maxBodyBytes = 64 << 20

func (s *Server) handleMap(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	s.metrics.RequestStarted()
	outcome := OutcomeError
	defer func() { s.metrics.RequestFinished(time.Since(start).Seconds(), outcome) }()

	var req MapRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}

	// The snapshot is pinned once per request: even if a publication
	// lands mid-solve, this request is answered consistently against
	// the version it names in the response.
	snap := s.store.Current()
	if err := req.validate(s.maxProcs, snap.M()); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}

	deadline := s.defaultDeadline
	if req.DeadlineMillis > 0 {
		deadline = time.Duration(req.DeadlineMillis) * time.Millisecond
	}
	ctx, cancel := context.WithTimeout(r.Context(), deadline)
	defer cancel()

	// A forwarded request is a peer's shard-miss consult: this daemon is
	// the owner and must answer locally regardless of what its own ring
	// says, so a disagreeing fleet config bounces at most one hop.
	forwarded := r.Header.Get(ForwardedHeader) != ""
	if forwarded {
		s.metrics.RecordForwarded()
	}

	key := fingerprint(&req, snap.Version)
	if res, ok := s.cache.get(key); ok {
		outcome = OutcomeCached
		writeJSON(w, http.StatusOK, MapResponse{MapResult: *res, Cached: true})
		return
	}

	// fromPeer is written only inside the singleflight leader's closure,
	// which runs in this goroutine or not at all (waiters share the
	// leader's result without executing it).
	fromPeer := false
	res, shared, err := s.cache.do(ctx, key, &req, func() (*MapResult, error) {
		r, peer, err := s.resolve(ctx, &req, snap, forwarded)
		fromPeer = peer
		return r, err
	})
	switch {
	case err == nil:
		switch {
		case shared:
			outcome = OutcomeDeduped
		case fromPeer:
			outcome = OutcomePeer
		default:
			outcome = OutcomeSolved
		}
		writeJSON(w, http.StatusOK, MapResponse{MapResult: *res, Deduped: shared, Peer: fromPeer})
	case errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled):
		outcome = OutcomeTimeout
		writeError(w, http.StatusGatewayTimeout, fmt.Errorf("deadline of %v exceeded", deadline))
	case errors.Is(err, ErrQueueFull) || errors.Is(err, ErrPoolClosed):
		outcome = OutcomeRejected
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, err)
	default:
		outcome = OutcomeError
		writeError(w, http.StatusUnprocessableEntity, err)
	}
}

// resolve obtains the result for a cache miss. In single-node mode (and
// for forwarded requests, where this daemon is the shard owner by
// definition) it solves locally. In cluster mode a request owned by a
// peer consults that peer first — the owner serves its cache or solves
// under its own singleflight, so concurrent misses across the fleet
// still collapse onto one solve — and only falls back to a local solve
// when the peer is unreachable or answers against a different snapshot
// version than the one this request pinned. peer reports whether the
// returned result came from the owning peer.
func (s *Server) resolve(ctx context.Context, req *MapRequest, snap *Snapshot, forwarded bool) (res *MapResult, peer bool, err error) {
	if s.cluster != nil && !forwarded {
		rk := RoutingKey(req)
		owner := s.cluster.Owner(rk)
		if !s.cluster.IsSelf(owner) {
			pres, perr := s.cluster.FetchResult(ctx, owner, req)
			if perr == nil && pres.SnapshotVersion == snap.Version {
				return pres, true, nil
			}
			if ctx.Err() != nil {
				// The consult died with the request's own deadline; a
				// local solve would be admitted dead.
				return nil, false, ctx.Err()
			}
			s.metrics.RecordPeerError()
			if perr != nil {
				s.logf("cluster: owner %s unavailable for %.12s, solving locally: %v", owner, rk, perr)
			} else {
				s.logf("cluster: owner %s answered snapshot v%d, local is v%d; solving locally",
					owner, pres.SnapshotVersion, snap.Version)
			}
		}
	}
	res, err = s.solve(ctx, req, snap)
	return res, false, err
}

// solve runs one mapping end to end on the worker pool: profile (or
// decode) the pattern, assemble the problem against the pinned snapshot,
// and map. It is only ever executed by a singleflight leader.
func (s *Server) solve(ctx context.Context, req *MapRequest, snap *Snapshot) (*MapResult, error) {
	var (
		res      *MapResult
		solveErr error
	)
	err := s.pool.Submit(ctx, func() {
		t0 := time.Now()
		if s.solveHook != nil {
			s.solveHook()
		}
		prob, err := req.Problem(snap, s.graphFor)
		if err != nil {
			solveErr = err
			return
		}
		mapper, err := req.Mapper(s.solverWorkers)
		if err != nil {
			solveErr = err
			return
		}
		pl, err := mapper.Map(prob)
		if err != nil {
			solveErr = err
			return
		}
		lat, bw := prob.CostParts(pl)
		elapsed := time.Since(t0)
		s.metrics.SolveFinished(elapsed.Seconds())
		res = &MapResult{
			SnapshotVersion: snap.Version,
			Algorithm:       mapper.Name(),
			Cost:            (lat + bw).Float(),
			LatencyCost:     lat.Float(),
			BandwidthCost:   bw.Float(),
			Placement:       pl,
			Digest:          placementDigest(pl),
			SolveMillis:     float64(elapsed.Microseconds()) / 1e3,
		}
	})
	if err != nil {
		return nil, err
	}
	if solveErr == nil && res == nil {
		// Belt and braces: a nil result with no error would be cached
		// and dereferenced by every later hit on this fingerprint.
		return nil, fmt.Errorf("service: solve produced no result")
	}
	return res, solveErr
}

// graphFor memoizes workload profiling. Concurrent first requests for
// the same key profile once thanks to the singleflight layer above; the
// plain mutex here only guards the map.
func (s *Server) graphFor(workload string, procs, iters int) (*comm.Graph, error) {
	key := fmt.Sprintf("%s/%d/%d", workload, procs, iters)
	s.graphMu.Lock()
	g, ok := s.graphs[key]
	s.graphMu.Unlock()
	if ok {
		return g, nil
	}
	app, err := apps.ByName(workload)
	if err != nil {
		return nil, err
	}
	g, err = apps.Graph(app, procs, iters)
	if err != nil {
		return nil, err
	}
	// Build the adjacency caches before publishing: the memoized graph is
	// shared by concurrent solves, whose reads must not trigger the
	// unsynchronized lazy rebuilds.
	g.Prewarm()
	s.graphMu.Lock()
	s.graphs[key] = g
	s.graphMu.Unlock()
	return g, nil
}

// snapshotView is the JSON shape of GET /v1/snapshot and /healthz's
// snapshot block.
type snapshotView struct {
	Version   uint64   `json:"version"`
	Source    string   `json:"source"`
	Sites     int      `json:"sites"`
	SiteNames []string `json:"site_names,omitempty"`
	Capacity  []int    `json:"capacity"`
	Degraded  [][2]int `json:"degraded_pairs,omitempty"`
}

func viewOf(snap *Snapshot) snapshotView {
	return snapshotView{
		Version:   snap.Version,
		Source:    snap.Source,
		Sites:     snap.M(),
		SiteNames: snap.SiteNames,
		Capacity:  snap.Capacity,
		Degraded:  snap.Degraded,
	}
}

func (s *Server) handleSnapshotGet(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, viewOf(s.store.Current()))
}

// SnapshotUpdate is the body of POST /admin/snapshot. Exactly one of
// (LT+BT) or FaultReport must be set: fresh matrices replace the model
// wholesale (a calibration landing), while a fault report derives a
// degraded model from the last measured snapshot (WANify-style runtime
// re-gauging feeding placement). Each report replaces the previous
// fault overlay rather than stacking on it.
//
// A non-zero Version marks a cluster replication message: the sender
// already published this snapshot at that version and is fanning the
// concrete matrices out, so Version requires LT+BT (never a fault
// report — the receiver must not re-derive against its own base) and is
// applied idempotently via Store.PublishAt. Replication messages are
// never fanned out again.
type SnapshotUpdate struct {
	Source      string         `json:"source,omitempty"`
	LT          [][]float64    `json:"lt,omitempty"`
	BT          [][]float64    `json:"bt,omitempty"`
	FaultReport *faults.Report `json:"fault_report,omitempty"`
	// Degraded carries the published snapshot's unreliable-pair list on
	// the replication path.
	Degraded [][2]int `json:"degraded,omitempty"`
	// Derived marks a replicated snapshot as fault-derived so the
	// receiver's base-snapshot tracking stays consistent with the
	// origin's.
	Derived bool `json:"derived,omitempty"`
	// Version is the origin-assigned snapshot version (0 = an ordinary
	// origin update, which assigns the next local version).
	Version uint64 `json:"version,omitempty"`
}

func (s *Server) handleSnapshotPost(w http.ResponseWriter, r *http.Request) {
	var upd SnapshotUpdate
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&upd); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding snapshot update: %w", err))
		return
	}
	cur := s.store.Current()
	var next *Snapshot
	switch {
	case upd.FaultReport != nil && (upd.LT != nil || upd.BT != nil):
		writeError(w, http.StatusBadRequest, fmt.Errorf("matrices and fault_report are mutually exclusive"))
		return
	case upd.Version > 0:
		s.handleSnapshotReplication(w, cur, &upd)
		return
	case upd.FaultReport != nil:
		// Derive from the last measured snapshot, not cur: cur may
		// itself be fault-degraded, and stacking reports would compound
		// penalties on every re-gauge.
		next = s.store.Base().WithFaultReport(upd.FaultReport)
	case upd.LT != nil && upd.BT != nil:
		lt, err := mat.From(upd.LT)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("lt: %w", err))
			return
		}
		bt, err := mat.From(upd.BT)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bt: %w", err))
			return
		}
		clone := *cur
		clone.Version = 0
		clone.LT, clone.BT = lt, bt
		clone.Degraded = nil
		clone.derived = false // fresh matrices are a measured model
		clone.Source = "admin"
		if upd.Source != "" {
			clone.Source = upd.Source
		}
		next = &clone
	default:
		writeError(w, http.StatusBadRequest, fmt.Errorf("snapshot update needs lt+bt matrices or a fault_report"))
		return
	}
	version, err := s.store.Publish(next)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	s.metrics.RecordSnapshot()
	s.logf("snapshot v%d published (%s)", version, next.Source)
	if s.cluster != nil {
		// This daemon is the origin: fan the published snapshot out at
		// its assigned version. Failed legs are logged and recorded in
		// peer health; the peer catches up on the next publication.
		s.cluster.Replicate(next)
	}
	writeJSON(w, http.StatusOK, viewOf(next))
}

// handleSnapshotReplication applies a version-carrying SnapshotUpdate —
// a peer's fan-out of a snapshot it already published. The receiver
// keeps its own topology (coordinates, capacities, names are boot-time
// fleet-wide constants) and adopts the replicated matrices at exactly
// the origin's version; stale or duplicate versions are acknowledged
// without effect, which is what makes replays idempotent.
func (s *Server) handleSnapshotReplication(w http.ResponseWriter, cur *Snapshot, upd *SnapshotUpdate) {
	if upd.FaultReport != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("replication carries matrices, never a fault report"))
		return
	}
	if upd.LT == nil || upd.BT == nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("replicated snapshot v%d needs lt+bt matrices", upd.Version))
		return
	}
	lt, err := mat.From(upd.LT)
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("lt: %w", err))
		return
	}
	bt, err := mat.From(upd.BT)
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bt: %w", err))
		return
	}
	clone := *cur
	clone.Version = 0
	clone.LT, clone.BT = lt, bt
	clone.Degraded = upd.Degraded
	clone.derived = upd.Derived
	clone.Source = "replicated"
	if upd.Source != "" {
		clone.Source = upd.Source
	}
	applied, err := s.store.PublishAt(&clone, upd.Version)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if applied {
		s.metrics.RecordSnapshot()
		s.logf("snapshot v%d replicated in (%s)", upd.Version, clone.Source)
		writeJSON(w, http.StatusOK, viewOf(&clone))
		return
	}
	// Stale replay: acknowledge with the snapshot the store kept.
	writeJSON(w, http.StatusOK, viewOf(s.store.Current()))
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	now := s.now()
	snap := s.store.Current()
	_, age := s.snapshotAge(now)
	blocks, probesOK := s.statusBlocks()
	status := "ok"
	httpStatus := http.StatusOK
	if !probesOK {
		status = "degraded"
	}
	// Only staleness escalates to 503: a load balancer should stop
	// steering traffic at a daemon whose model has gone stale, but a
	// merely degraded gauger with a fresh snapshot still serves soundly.
	if s.maxStaleness > 0 && age > s.maxStaleness {
		status = "degraded"
		httpStatus = http.StatusServiceUnavailable
	}
	body := map[string]any{
		"status":               status,
		"uptime_seconds":       now.Sub(s.started).Seconds(),
		"snapshot":             viewOf(snap),
		"snapshot_age_seconds": age.Seconds(),
	}
	if s.maxStaleness > 0 {
		body["max_staleness_seconds"] = s.maxStaleness.Seconds()
	}
	if len(blocks) > 0 {
		body["components"] = blocks
	}
	writeJSON(w, httpStatus, body)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	v := s.metrics.Snapshot(s.pool.QueueDepth(), s.cache.len())
	// The two parallelism knobs live on the server, not the counter set;
	// exposing both lets operators verify the pool × per-solve product
	// against the machine (the oversubscription rule in Config).
	v.PoolWorkers = s.poolWorkers
	v.SolverWorkers = s.solverWorkers
	_, age := s.snapshotAge(s.now())
	v.SnapshotAgeSeconds = age.Seconds()
	blocks, _ := s.statusBlocks()
	v.Components = blocks
	writeJSON(w, http.StatusOK, v)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v) // the response is already committed; a write error means a gone client
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorResponse{Error: err.Error()})
}
