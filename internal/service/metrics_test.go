package service

import "testing"

// TestMetricsShedLatencySeparation is the regression test for the
// latency-window pollution bug: rejected and timed-out requests —
// typically sub-millisecond 503s — used to be recorded into the same
// window as served requests, so an overload burst made the reported
// service latency look better exactly when the daemon was shedding.
// Served and shed outcomes must land in separate windows.
func TestMetricsShedLatencySeparation(t *testing.T) {
	m := NewMetrics()
	served := []Outcome{OutcomeSolved, OutcomeCached, OutcomeDeduped, OutcomePeer}
	for _, o := range served {
		m.RequestStarted()
		m.RequestFinished(1.0, o) // slow but served: 1000 ms
	}
	shed := []Outcome{OutcomeRejected, OutcomeTimeout, OutcomeError}
	for _, o := range shed {
		m.RequestStarted()
		m.RequestFinished(0.0001, o) // fast shed: 0.1 ms
	}

	v := m.Snapshot(0, 0)
	if v.RequestLatency.Count != len(served) {
		t.Errorf("request_latency count = %d, want %d served samples", v.RequestLatency.Count, len(served))
	}
	if v.ShedLatency.Count != len(shed) {
		t.Errorf("shed_latency count = %d, want %d shed samples", v.ShedLatency.Count, len(shed))
	}
	// The served window must not be dragged down by the microsecond sheds:
	// every sample in it is 1000 ms.
	if v.RequestLatency.P50 != 1000 {
		t.Errorf("request_latency p50 = %g ms, want 1000 (shed samples polluted the window)", v.RequestLatency.P50)
	}
	if v.ShedLatency.Max >= 1 {
		t.Errorf("shed_latency max = %g ms, want < 1 (served samples leaked into the shed window)", v.ShedLatency.Max)
	}
	if v.Rejected != 1 || v.Timeouts != 1 || v.Errors != 1 {
		t.Errorf("rejected/timeouts/errors = %d/%d/%d, want 1/1/1", v.Rejected, v.Timeouts, v.Errors)
	}
	if v.PeerHits != 1 {
		t.Errorf("peer_hits = %d, want 1", v.PeerHits)
	}
	if v.MaxInflight != 1 {
		t.Errorf("max_inflight = %d, want 1", v.MaxInflight)
	}
}
