package service

import (
	"container/list"
	"context"
	"sync"
)

// resultCache is a fingerprint-keyed LRU of solved mapping results with
// singleflight deduplication: concurrent requests for the same
// fingerprint collapse onto one solve, and completed solves are retained
// up to a capacity bound. Keys embed the snapshot version (see
// fingerprint.go), so a snapshot swap makes old entries unreachable and
// ordinary LRU pressure evicts them — no flush path, no invalidation
// races.
//
// Each entry retains the request that produced it: the re-gauging loop
// walks the cache after a snapshot publication and rebuilds each entry's
// problem against the new model to decide whether the placement is worth
// migrating.
type resultCache struct {
	mu       sync.Mutex
	capacity int
	order    *list.List               // front = most recent
	entries  map[string]*list.Element // fingerprint → element whose Value is *cacheEntry
	inflight map[string]*flight       // fingerprint → in-progress solve
}

type cacheEntry struct {
	key string
	req *MapRequest
	res *MapResult
}

// flight is one in-progress solve other requests can wait on.
type flight struct {
	done chan struct{}
	res  *MapResult
	err  error
}

func newResultCache(capacity int) *resultCache {
	if capacity < 1 {
		capacity = 1
	}
	return &resultCache{
		capacity: capacity,
		order:    list.New(),
		entries:  make(map[string]*list.Element),
		inflight: make(map[string]*flight),
	}
}

// get returns the cached result for key, refreshing its recency.
func (c *resultCache) get(key string) (*MapResult, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).res, true
}

// add inserts a result, evicting the least-recently-used entry past
// capacity.
func (c *resultCache) add(key string, req *MapRequest, res *MapResult) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		c.order.MoveToFront(el)
		entry := el.Value.(*cacheEntry)
		entry.req = req
		entry.res = res
		return
	}
	c.entries[key] = c.order.PushFront(&cacheEntry{key: key, req: req, res: res})
	for c.order.Len() > c.capacity {
		last := c.order.Back()
		c.order.Remove(last)
		delete(c.entries, last.Value.(*cacheEntry).key)
	}
}

// len returns the number of cached results.
func (c *resultCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// CachedPlacement is one cached (request, result) pair, exposed to the
// re-gauging loop so it can re-evaluate live placements against a freshly
// published snapshot.
type CachedPlacement struct {
	Key     string
	Request *MapRequest
	Result  *MapResult
}

// walk returns a point-in-time copy of the cache contents in recency
// order (most recent first). The list order — not the entries map — is
// walked, so the result is deterministic for a deterministic request
// history.
func (c *resultCache) walk() []CachedPlacement {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]CachedPlacement, 0, c.order.Len())
	for el := c.order.Front(); el != nil; el = el.Next() {
		e := el.Value.(*cacheEntry)
		out = append(out, CachedPlacement{Key: e.key, Request: e.req, Result: e.res})
	}
	return out
}

// do runs solve for key exactly once across concurrent callers: the
// first caller executes it, later callers receive the same result once
// it completes — or their own ctx error if their deadline fires first
// (the leader's solve keeps running for the callers still waiting). A
// cached result short-circuits before any flight is created. The boolean
// reports whether this caller shared another caller's solve
// (deduplicated) rather than executing its own.
//
// Successful results are added to the LRU before the flight resolves, so
// a request arriving after completion hits the cache directly. Errors
// are not cached: the next request retries.
func (c *resultCache) do(ctx context.Context, key string, req *MapRequest, solve func() (*MapResult, error)) (res *MapResult, shared bool, err error) {
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		c.order.MoveToFront(el)
		res = el.Value.(*cacheEntry).res
		c.mu.Unlock()
		return res, true, nil
	}
	if f, ok := c.inflight[key]; ok {
		c.mu.Unlock()
		select {
		case <-f.done:
			return f.res, true, f.err
		case <-ctx.Done():
			// The waiter's own deadline fired before the leader finished:
			// nothing was shared. Reporting shared=true here would
			// misclassify the outcome upstream — a timed-out waiter must
			// count as a timeout, not a dedup.
			return nil, false, ctx.Err()
		}
	}
	f := &flight{done: make(chan struct{})}
	c.inflight[key] = f
	c.mu.Unlock()

	f.res, f.err = solve()
	if f.err == nil {
		c.add(key, req, f.res)
	}
	c.mu.Lock()
	delete(c.inflight, key)
	c.mu.Unlock()
	close(f.done)
	return f.res, false, f.err
}
