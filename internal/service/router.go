package service

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Ring is a consistent-hash ring over a fleet of geomapd base URLs:
// every daemon owns the arc of fingerprint space between its virtual
// points and their predecessors. The ring is a pure function of the
// (deduplicated, order-normalized) peer list, so every daemon and every
// client that knows the same fleet computes the same owner for every
// key — the property the cluster's byte-identical placement digests
// rest on. A Ring is immutable after construction and safe for
// concurrent use.
type Ring struct {
	peers  []string // normalized, sorted, unique
	points []ringPoint
}

// ringPoint is one virtual node: a hash position owned by peers[peer].
type ringPoint struct {
	hash uint64
	peer int
}

// ringReplicas is how many virtual points each peer contributes. 64
// points per peer keeps the expected ownership imbalance of a small
// fleet within a few percent while construction stays trivial.
const ringReplicas = 64

// NormalizePeerURL canonicalizes one fleet member's base URL: trimmed,
// with any trailing slash removed, and defaulting the scheme to http://
// so "-peers host:port,…" and "-peers http://host:port,…" name the same
// ring.
func NormalizePeerURL(raw string) string {
	u := strings.TrimSpace(raw)
	u = strings.TrimRight(u, "/")
	if u == "" {
		return ""
	}
	if !strings.Contains(u, "://") {
		u = "http://" + u
	}
	return u
}

// NewRing builds the ring for a fleet. Peer URLs are normalized with
// NormalizePeerURL; the input order does not matter and duplicates are
// rejected (a duplicated URL would silently double a daemon's share).
func NewRing(peers []string) (*Ring, error) {
	if len(peers) == 0 {
		return nil, fmt.Errorf("service: ring needs at least one peer")
	}
	norm := make([]string, 0, len(peers))
	for _, p := range peers {
		u := NormalizePeerURL(p)
		if u == "" {
			return nil, fmt.Errorf("service: empty peer URL in %q", strings.Join(peers, ","))
		}
		norm = append(norm, u)
	}
	sort.Strings(norm)
	for i := 1; i < len(norm); i++ {
		if norm[i] == norm[i-1] {
			return nil, fmt.Errorf("service: duplicate peer URL %q", norm[i])
		}
	}
	r := &Ring{peers: norm, points: make([]ringPoint, 0, len(norm)*ringReplicas)}
	for i, p := range norm {
		for v := 0; v < ringReplicas; v++ {
			r.points = append(r.points, ringPoint{hash: ringHash(p + "#" + strconv.Itoa(v)), peer: i})
		}
	}
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].hash != r.points[b].hash {
			return r.points[a].hash < r.points[b].hash
		}
		// A 64-bit collision between virtual points is effectively
		// impossible, but the tie-break keeps the sort total so the ring
		// stays a pure function of the peer set.
		return r.points[a].peer < r.points[b].peer
	})
	return r, nil
}

// Owner returns the peer URL owning key: the first virtual point at or
// clockwise after the key's hash position.
func (r *Ring) Owner(key string) string {
	h := ringHash(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.peers[r.points[i].peer]
}

// Peers returns the normalized, sorted fleet membership.
func (r *Ring) Peers() []string { return append([]string(nil), r.peers...) }

// Size returns the number of fleet members.
func (r *Ring) Size() int { return len(r.peers) }

// ringHash positions a string on the ring: the first 8 bytes of its
// SHA-256. Reusing the fingerprint hash family keeps routing free of any
// seed or process identity.
//
//geolint:deterministic
func ringHash(s string) uint64 {
	sum := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(sum[:8])
}
