package service

import (
	"sync"

	"geoprocmap/internal/stats"
)

// latencyWindow is how many recent samples each latency distribution
// retains; percentiles are computed over this sliding window so /metrics
// reflects current behavior, not the daemon's whole lifetime.
const latencyWindow = 4096

// Metrics is the daemon's operational counter set. All methods are safe
// for concurrent use; reads take a consistent point-in-time view.
type Metrics struct {
	mu sync.Mutex

	requests   uint64
	cacheHits  uint64
	deduped    uint64
	solves     uint64
	errors     uint64
	rejected   uint64 // queue-full sheds
	timeouts   uint64 // deadline exceeded
	snapshots  uint64 // snapshot publications observed via RecordSnapshot
	peerHits   uint64 // shard misses filled by the owning peer (cluster mode)
	forwarded  uint64 // requests received from a peer's shard-miss consult
	peerErrors uint64 // failed peer consults that fell back to a local solve
	// reqLat holds served requests only. Sheds and timeouts land in
	// shedLat: a storm of microsecond 503s must not drag the reported
	// service percentiles down exactly when the daemon is least healthy.
	reqLat      *ring
	shedLat     *ring
	solveLat    *ring
	inflight    int
	maxInflight int // high-water mark of concurrent requests
}

// ring is a fixed-capacity overwrite-oldest sample buffer.
type ring struct {
	buf  []float64
	next int
	full bool
}

func newRing(n int) *ring { return &ring{buf: make([]float64, n)} }

func (r *ring) add(v float64) {
	r.buf[r.next] = v
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
		r.full = true
	}
}

// samples returns a copy of the live window.
func (r *ring) samples() []float64 {
	if r.full {
		return append([]float64(nil), r.buf...)
	}
	return append([]float64(nil), r.buf[:r.next]...)
}

// NewMetrics returns an empty counter set.
func NewMetrics() *Metrics {
	return &Metrics{
		reqLat:   newRing(latencyWindow),
		shedLat:  newRing(latencyWindow),
		solveLat: newRing(latencyWindow),
	}
}

// RequestStarted marks a request in flight.
func (m *Metrics) RequestStarted() {
	m.mu.Lock()
	m.requests++
	m.inflight++
	if m.inflight > m.maxInflight {
		m.maxInflight = m.inflight
	}
	m.mu.Unlock()
}

// RequestFinished records a request's end-to-end seconds and outcome.
// Served outcomes (solved, cached, deduped, peer-filled) enter the
// request-latency window; sheds, timeouts, and errors are recorded in
// their own window so overload cannot pollute the serving percentiles.
func (m *Metrics) RequestFinished(seconds float64, outcome Outcome) {
	m.mu.Lock()
	m.inflight--
	switch outcome {
	case OutcomeCached:
		m.cacheHits++
		m.reqLat.add(seconds)
	case OutcomeDeduped:
		m.deduped++
		m.reqLat.add(seconds)
	case OutcomePeer:
		m.peerHits++
		m.reqLat.add(seconds)
	case OutcomeSolved:
		m.reqLat.add(seconds)
	case OutcomeRejected:
		m.rejected++
		m.shedLat.add(seconds)
	case OutcomeTimeout:
		m.timeouts++
		m.shedLat.add(seconds)
	case OutcomeError:
		m.errors++
		m.shedLat.add(seconds)
	}
	m.mu.Unlock()
}

// SolveFinished records one executed solve's seconds.
func (m *Metrics) SolveFinished(seconds float64) {
	m.mu.Lock()
	m.solves++
	m.solveLat.add(seconds)
	m.mu.Unlock()
}

// RecordSnapshot notes a snapshot publication.
func (m *Metrics) RecordSnapshot() {
	m.mu.Lock()
	m.snapshots++
	m.mu.Unlock()
}

// RecordForwarded notes a request that arrived carrying ForwardedHeader
// — this daemon answered as the shard owner for a peer's miss.
func (m *Metrics) RecordForwarded() {
	m.mu.Lock()
	m.forwarded++
	m.mu.Unlock()
}

// RecordPeerError notes a failed peer consult (the request fell back to
// a local solve).
func (m *Metrics) RecordPeerError() {
	m.mu.Lock()
	m.peerErrors++
	m.mu.Unlock()
}

// Outcome classifies how a request ended.
type Outcome int

// Request outcomes, in rough order of desirability.
const (
	OutcomeSolved Outcome = iota
	OutcomeCached
	OutcomeDeduped
	OutcomePeer // served by fetching the owning peer's result
	OutcomeRejected
	OutcomeTimeout
	OutcomeError
)

// LatencySummary is a percentile digest of one latency distribution.
type LatencySummary struct {
	Count int     `json:"count"`
	P50   float64 `json:"p50_ms"`
	P90   float64 `json:"p90_ms"`
	P99   float64 `json:"p99_ms"`
	Max   float64 `json:"max_ms"`
}

// View is the point-in-time JSON shape of /metrics.
type View struct {
	Requests      uint64  `json:"requests"`
	CacheHits     uint64  `json:"cache_hits"`
	Deduped       uint64  `json:"deduped"`
	Solves        uint64  `json:"solves"`
	Errors        uint64  `json:"errors"`
	Rejected      uint64  `json:"rejected"`
	Timeouts      uint64  `json:"timeouts"`
	Snapshots     uint64  `json:"snapshot_publications"`
	PeerHits      uint64  `json:"peer_hits,omitempty"`
	Forwarded     uint64  `json:"forwarded,omitempty"`
	PeerErrors    uint64  `json:"peer_errors,omitempty"`
	HitRate       float64 `json:"cache_hit_rate"`
	Inflight      int     `json:"inflight"`
	MaxInflight   int     `json:"max_inflight"`
	QueueDepth    int     `json:"queue_depth"`
	CacheEntries  int     `json:"cache_entries"`
	PoolWorkers   int     `json:"pool_workers,omitempty"`
	SolverWorkers int     `json:"solver_workers,omitempty"`
	// RequestLatency digests served requests only; ShedLatency holds the
	// rejected/timed-out/errored remainder.
	RequestLatency LatencySummary `json:"request_latency"`
	ShedLatency    LatencySummary `json:"shed_latency,omitempty"`
	SolveLatency   LatencySummary `json:"solve_latency"`
	// SnapshotAgeSeconds is how long the current snapshot has been the
	// newest one, as observed by the read path (see Server.snapshotAge).
	SnapshotAgeSeconds float64 `json:"snapshot_age_seconds"`
	// Components carries the registered auxiliary status blocks (e.g. the
	// re-gauging loop's view or the cluster's peer health), keyed by
	// probe name.
	Components map[string]any `json:"components,omitempty"`
}

// Snapshot summarizes the counters. Queue depth and cache size are
// supplied by the caller (they live on the pool and cache).
func (m *Metrics) Snapshot(queueDepth, cacheEntries int) View {
	m.mu.Lock()
	defer m.mu.Unlock()
	v := View{
		Requests:     m.requests,
		CacheHits:    m.cacheHits,
		Deduped:      m.deduped,
		Solves:       m.solves,
		Errors:       m.errors,
		Rejected:     m.rejected,
		Timeouts:     m.timeouts,
		Snapshots:    m.snapshots,
		PeerHits:     m.peerHits,
		Forwarded:    m.forwarded,
		PeerErrors:   m.peerErrors,
		Inflight:     m.inflight,
		MaxInflight:  m.maxInflight,
		QueueDepth:   queueDepth,
		CacheEntries: cacheEntries,
	}
	if m.requests > 0 {
		v.HitRate = float64(m.cacheHits) / float64(m.requests)
	}
	v.RequestLatency = summarize(m.reqLat.samples())
	v.ShedLatency = summarize(m.shedLat.samples())
	v.SolveLatency = summarize(m.solveLat.samples())
	return v
}

// summarize digests a sample of seconds into millisecond percentiles.
// stats.Percentile panics on empty input by contract, so the empty
// window short-circuits to a zero summary.
func summarize(secs []float64) LatencySummary {
	if len(secs) == 0 {
		return LatencySummary{}
	}
	ms := make([]float64, len(secs))
	for i, s := range secs {
		ms[i] = s * 1e3
	}
	return LatencySummary{
		Count: len(ms),
		P50:   stats.Percentile(ms, 50),
		P90:   stats.Percentile(ms, 90),
		P99:   stats.Percentile(ms, 99),
		Max:   stats.Max(ms),
	}
}
