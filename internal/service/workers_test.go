package service

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"runtime"
	"testing"
)

func TestClampSolverWorkers(t *testing.T) {
	cases := []struct {
		pool, requested, maxProcs, want int
	}{
		{4, 0, 16, 4},  // derived: fills the machine exactly
		{4, 0, 2, 1},   // pool alone oversubscribes: floor 1
		{4, 2, 16, 2},  // explicit within budget: honored
		{4, 8, 16, 4},  // explicit beyond budget: clamped
		{2, 3, 8, 3},   // 2×3 ≤ 8: honored
		{1, 64, 8, 8},  // single worker pool gets the whole machine at most
		{16, 1, 8, 1},  // floor 1 even when the pool already oversubscribes
		{3, 0, 10, 3},  // derived rounds down
	}
	for _, c := range cases {
		if got := clampSolverWorkers(c.pool, c.requested, c.maxProcs); got != c.want {
			t.Errorf("clampSolverWorkers(pool=%d, requested=%d, maxProcs=%d) = %d, want %d",
				c.pool, c.requested, c.maxProcs, got, c.want)
		}
	}
}

func TestNewServerRejectsNegativeSolverWorkers(t *testing.T) {
	st, err := NewStore(testSnapshot(t, 64, 1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewServer(Config{Store: st, SolverWorkers: -1}); err == nil {
		t.Error("negative SolverWorkers accepted")
	}
}

// /metrics must expose both parallelism knobs so operators can verify the
// pool × per-solve product against the machine.
func TestMetricsExposeWorkerKnobs(t *testing.T) {
	srv := newTestServer(t, Config{Workers: 2, SolverWorkers: 1})
	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	var v View
	if err := json.Unmarshal(rec.Body.Bytes(), &v); err != nil {
		t.Fatal(err)
	}
	if v.PoolWorkers != 2 {
		t.Errorf("pool_workers = %d, want 2", v.PoolWorkers)
	}
	if v.SolverWorkers != 1 {
		t.Errorf("solver_workers = %d, want 1", v.SolverWorkers)
	}
}

// A solve through the service must produce the same placement digest no
// matter the per-solve parallelism — the property that keeps SolverWorkers
// out of the request fingerprint and the geoload digest contract intact.
func TestSolveDigestIndependentOfSolverWorkers(t *testing.T) {
	req := MapRequest{Workload: "LU", Procs: 64, Seed: 7}
	digests := map[string]bool{}
	for _, workers := range []int{1, 2, runtime.GOMAXPROCS(0)} {
		srv := newTestServer(t, Config{Workers: 1, SolverWorkers: workers})
		// Bypass the clamp so workers > GOMAXPROCS still runs parallel.
		srv.solverWorkers = workers
		var resp MapResponse
		postMap(t, srv.Handler(), req, http.StatusOK, &resp)
		digests[resp.Digest] = true
	}
	if len(digests) != 1 {
		t.Errorf("placement digest varies with solver workers: %v", digests)
	}
}
