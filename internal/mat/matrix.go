// Package mat provides small dense matrix and vector types used throughout
// the geo-distributed process-mapping library.
//
// The paper's formulation (Table 4 of Zhou et al., SC'17) is expressed in
// terms of four dense matrices — the communication volume matrix CG (N×N),
// the message-count matrix AG (N×N), and the inter/intra-site latency and
// bandwidth matrices LT and BT (M×M) — plus a handful of integer vectors.
// This package implements exactly the operations those structures need:
// construction, element access, row/column aggregation, symmetry checks,
// scaling, and a compact text serialization for tooling.
package mat

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// Matrix is a dense row-major matrix of float64 values.
//
// The zero value is an empty (0×0) matrix. Use New or From to build one.
type Matrix struct {
	rows, cols int
	data       []float64
}

// New returns a rows×cols matrix of zeros.
// It panics if either dimension is negative.
func New(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		// Negative dimensions are a programmer error, mirroring make()
		// semantics; parsing paths (Read) validate before calling New.
		panic(fmt.Sprintf("mat: invalid dimensions %d×%d", rows, cols)) //geolint:ignore libpanic negative dims are a programmer error, like make() with negative len
	}
	return &Matrix{rows: rows, cols: cols, data: make([]float64, rows*cols)}
}

// NewSquare returns an n×n matrix of zeros.
func NewSquare(n int) *Matrix { return New(n, n) }

// From builds a matrix from a slice of rows. All rows must have equal length.
func From(rows [][]float64) (*Matrix, error) {
	if len(rows) == 0 {
		return New(0, 0), nil
	}
	cols := len(rows[0])
	m := New(len(rows), cols)
	for i, r := range rows {
		if len(r) != cols {
			return nil, fmt.Errorf("mat: ragged input: row %d has %d columns, want %d", i, len(r), cols)
		}
		copy(m.data[i*cols:(i+1)*cols], r)
	}
	return m, nil
}

// MustFrom is like From but panics on ragged input. It is intended for
// package-level literals and tests.
func MustFrom(rows [][]float64) *Matrix {
	m, err := From(rows)
	if err != nil {
		panic(err)
	}
	return m
}

// Rows returns the number of rows.
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Matrix) Cols() int { return m.cols }

// IsSquare reports whether the matrix is square.
func (m *Matrix) IsSquare() bool { return m.rows == m.cols }

// At returns the element at row i, column j.
func (m *Matrix) At(i, j int) float64 {
	m.check(i, j)
	return m.data[i*m.cols+j]
}

// Set stores v at row i, column j.
func (m *Matrix) Set(i, j int, v float64) {
	m.check(i, j)
	m.data[i*m.cols+j] = v
}

// Add adds v to the element at row i, column j.
func (m *Matrix) Add(i, j int, v float64) {
	m.check(i, j)
	m.data[i*m.cols+j] += v
}

func (m *Matrix) check(i, j int) {
	if i < 0 || i >= m.rows || j < 0 || j >= m.cols {
		// At/Set/Add sit on the cost-evaluation hot path; bounds violations
		// are programmer bugs, reported like slice-index panics.
		//geolint:allocsite panic path: the message formats only on an out-of-range programmer error
		panic(fmt.Sprintf("mat: index (%d,%d) out of range for %d×%d matrix", i, j, m.rows, m.cols)) //geolint:ignore libpanic index bounds mirror built-in slice indexing on the cost hot path
	}
}

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	c := New(m.rows, m.cols)
	copy(c.data, m.data)
	return c
}

// Fill sets every element to v.
func (m *Matrix) Fill(v float64) {
	for i := range m.data {
		m.data[i] = v
	}
}

// Scale multiplies every element by f in place.
func (m *Matrix) Scale(f float64) {
	for i := range m.data {
		m.data[i] *= f
	}
}

// Row returns a copy of row i.
func (m *Matrix) Row(i int) []float64 {
	if i < 0 || i >= m.rows {
		panic(fmt.Sprintf("mat: row %d out of range for %d×%d matrix", i, m.rows, m.cols)) //geolint:ignore libpanic index bounds mirror built-in slice indexing
	}
	out := make([]float64, m.cols)
	copy(out, m.data[i*m.cols:(i+1)*m.cols])
	return out
}

// RowSum returns the sum of row i.
func (m *Matrix) RowSum(i int) float64 {
	if i < 0 || i >= m.rows {
		panic(fmt.Sprintf("mat: row %d out of range for %d×%d matrix", i, m.rows, m.cols)) //geolint:ignore libpanic index bounds mirror built-in slice indexing
	}
	var s float64
	for _, v := range m.data[i*m.cols : (i+1)*m.cols] {
		s += v
	}
	return s
}

// ColSum returns the sum of column j.
func (m *Matrix) ColSum(j int) float64 {
	if j < 0 || j >= m.cols {
		panic(fmt.Sprintf("mat: column %d out of range for %d×%d matrix", j, m.rows, m.cols)) //geolint:ignore libpanic index bounds mirror built-in slice indexing
	}
	var s float64
	for i := 0; i < m.rows; i++ {
		s += m.data[i*m.cols+j]
	}
	return s
}

// Sum returns the sum of all elements.
func (m *Matrix) Sum() float64 {
	var s float64
	for _, v := range m.data {
		s += v
	}
	return s
}

// Max returns the maximum element. It returns 0 for an empty matrix.
func (m *Matrix) Max() float64 {
	if len(m.data) == 0 {
		return 0
	}
	max := m.data[0]
	for _, v := range m.data[1:] {
		if v > max {
			max = v
		}
	}
	return max
}

// MaxOffDiagonal returns the maximum element outside the main diagonal of a
// square matrix, together with its position. It returns (0, -1, -1, nil) if
// the matrix has no off-diagonal elements, and an error for a non-square
// matrix (which can arrive from user input via Read).
func (m *Matrix) MaxOffDiagonal() (v float64, row, col int, err error) {
	if !m.IsSquare() {
		return 0, -1, -1, fmt.Errorf("mat: MaxOffDiagonal requires a square matrix, have %d×%d", m.rows, m.cols)
	}
	row, col = -1, -1
	v = math.Inf(-1)
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			if i == j {
				continue
			}
			if e := m.data[i*m.cols+j]; e > v {
				v, row, col = e, i, j
			}
		}
	}
	if row == -1 {
		return 0, -1, -1, nil
	}
	return v, row, col, nil
}

// AddMatrix adds other to m in place. The matrices must have equal dimensions.
func (m *Matrix) AddMatrix(other *Matrix) error {
	if m.rows != other.rows || m.cols != other.cols {
		return fmt.Errorf("mat: dimension mismatch: %d×%d vs %d×%d", m.rows, m.cols, other.rows, other.cols)
	}
	for i := range m.data {
		m.data[i] += other.data[i]
	}
	return nil
}

// Symmetrize replaces m with (m + mᵀ)/2. It returns an error for a
// non-square matrix (which can arrive from user input via Read).
func (m *Matrix) Symmetrize() error {
	if !m.IsSquare() {
		return fmt.Errorf("mat: Symmetrize requires a square matrix, have %d×%d", m.rows, m.cols)
	}
	for i := 0; i < m.rows; i++ {
		for j := i + 1; j < m.cols; j++ {
			avg := (m.data[i*m.cols+j] + m.data[j*m.cols+i]) / 2
			m.data[i*m.cols+j] = avg
			m.data[j*m.cols+i] = avg
		}
	}
	return nil
}

// IsSymmetric reports whether a square matrix equals its transpose to within
// tol (absolute difference).
func (m *Matrix) IsSymmetric(tol float64) bool {
	if !m.IsSquare() {
		return false
	}
	for i := 0; i < m.rows; i++ {
		for j := i + 1; j < m.cols; j++ {
			if math.Abs(m.data[i*m.cols+j]-m.data[j*m.cols+i]) > tol {
				return false
			}
		}
	}
	return true
}

// Equal reports whether m and other have the same shape and all elements are
// within tol of each other.
func (m *Matrix) Equal(other *Matrix, tol float64) bool {
	if m.rows != other.rows || m.cols != other.cols {
		return false
	}
	for i := range m.data {
		if math.Abs(m.data[i]-other.data[i]) > tol {
			return false
		}
	}
	return true
}

// Transpose returns a new matrix that is the transpose of m.
func (m *Matrix) Transpose() *Matrix {
	t := New(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			t.data[j*t.cols+i] = m.data[i*m.cols+j]
		}
	}
	return t
}

// String renders the matrix as whitespace-separated rows, one per line.
func (m *Matrix) String() string {
	var b strings.Builder
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			if j > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%g", m.data[i*m.cols+j])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// WriteTo writes the matrix in a simple text format: a header line
// "rows cols" followed by one line per row of space-separated values.
func (m *Matrix) WriteTo(w io.Writer) (int64, error) {
	var total int64
	n, err := fmt.Fprintf(w, "%d %d\n", m.rows, m.cols)
	total += int64(n)
	if err != nil {
		return total, err
	}
	n, err = io.WriteString(w, m.String())
	total += int64(n)
	return total, err
}

// Read parses a matrix in the format produced by WriteTo.
func Read(r io.Reader) (*Matrix, error) {
	br := bufio.NewReader(r)
	header, err := br.ReadString('\n')
	if err != nil {
		return nil, fmt.Errorf("mat: reading header: %w", err)
	}
	parts := strings.Fields(header)
	if len(parts) != 2 {
		return nil, errors.New("mat: malformed header, want \"rows cols\"")
	}
	rows, err := strconv.Atoi(parts[0])
	if err != nil {
		return nil, fmt.Errorf("mat: bad row count %q: %w", parts[0], err)
	}
	cols, err := strconv.Atoi(parts[1])
	if err != nil {
		return nil, fmt.Errorf("mat: bad column count %q: %w", parts[1], err)
	}
	if rows < 0 || cols < 0 {
		return nil, fmt.Errorf("mat: negative dimensions %d×%d", rows, cols)
	}
	m := New(rows, cols)
	for i := 0; i < rows; i++ {
		line, err := br.ReadString('\n')
		if err != nil && !(errors.Is(err, io.EOF) && line != "") {
			return nil, fmt.Errorf("mat: reading row %d: %w", i, err)
		}
		fields := strings.Fields(line)
		if len(fields) != cols {
			return nil, fmt.Errorf("mat: row %d has %d values, want %d", i, len(fields), cols)
		}
		for j, f := range fields {
			v, err := strconv.ParseFloat(f, 64)
			if err != nil {
				return nil, fmt.Errorf("mat: row %d col %d: %w", i, j, err)
			}
			m.data[i*cols+j] = v
		}
	}
	return m, nil
}
