package mat

import (
	"testing"
	"testing/quick"
)

func TestIntVecBasics(t *testing.T) {
	v := NewIntVec(4, 7)
	if len(v) != 4 {
		t.Fatalf("len = %d, want 4", len(v))
	}
	if v.Count(7) != 4 || v.Count(0) != 0 {
		t.Errorf("Count wrong: %d/%d", v.Count(7), v.Count(0))
	}
	if v.Sum() != 28 {
		t.Errorf("Sum = %d, want 28", v.Sum())
	}
}

func TestIntVecCloneIsDeep(t *testing.T) {
	v := IntVec{1, 2, 3}
	c := v.Clone()
	c[0] = 99
	if v[0] != 1 {
		t.Error("Clone shares storage")
	}
}

func TestIntVecMax(t *testing.T) {
	if got := (IntVec{}).Max(); got != 0 {
		t.Errorf("empty Max = %d, want 0", got)
	}
	if got := (IntVec{-3, -1, -7}).Max(); got != -1 {
		t.Errorf("Max = %d, want -1", got)
	}
}

func TestIntVecHistogram(t *testing.T) {
	v := IntVec{0, 1, 1, 2, -1, 5}
	h := v.Histogram(3)
	want := []int{1, 2, 1}
	for i := range want {
		if h[i] != want[i] {
			t.Errorf("Histogram[%d] = %d, want %d", i, h[i], want[i])
		}
	}
}

func TestIntVecEqual(t *testing.T) {
	a := IntVec{1, 2}
	if !a.Equal(IntVec{1, 2}) {
		t.Error("equal vectors not Equal")
	}
	if a.Equal(IntVec{1}) || a.Equal(IntVec{1, 3}) {
		t.Error("unequal vectors reported Equal")
	}
}

// Property: histogram bucket counts sum to the number of in-range elements.
func TestQuickHistogramTotal(t *testing.T) {
	f := func(raw []uint8) bool {
		v := make(IntVec, len(raw))
		inRange := 0
		for i, r := range raw {
			v[i] = int(r%12) - 2 // values in [-2, 9]
			if v[i] >= 0 && v[i] < 8 {
				inRange++
			}
		}
		h := v.Histogram(8)
		total := 0
		for _, c := range h {
			total += c
		}
		return total == inRange
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
