package mat

import "fmt"

// IntVec is an integer vector, used for the capacity vector I (number of
// physical nodes per site), the constraint vector C (pinned site per process,
// -1 meaning unconstrained) and the placement vector P (site per process).
type IntVec []int

// NewIntVec returns a length-n vector filled with v.
func NewIntVec(n int, v int) IntVec {
	out := make(IntVec, n)
	for i := range out {
		out[i] = v
	}
	return out
}

// Clone returns a deep copy of the vector.
func (v IntVec) Clone() IntVec {
	out := make(IntVec, len(v))
	copy(out, v)
	return out
}

// Count returns the number of elements equal to x. This is the count(m, n)
// helper from the paper's problem definition (Formula 5).
func (v IntVec) Count(x int) int {
	n := 0
	for _, e := range v {
		if e == x {
			n++
		}
	}
	return n
}

// Sum returns the sum of all elements.
func (v IntVec) Sum() int {
	s := 0
	for _, e := range v {
		s += e
	}
	return s
}

// Max returns the maximum element, or 0 for an empty vector.
func (v IntVec) Max() int {
	if len(v) == 0 {
		return 0
	}
	max := v[0]
	for _, e := range v[1:] {
		if e > max {
			max = e
		}
	}
	return max
}

// Histogram returns counts[s] = number of elements equal to s, for
// 0 <= s < buckets. Elements outside [0, buckets) are ignored.
func (v IntVec) Histogram(buckets int) []int {
	counts := make([]int, buckets)
	for _, e := range v {
		if e >= 0 && e < buckets {
			counts[e]++
		}
	}
	return counts
}

// Equal reports whether v and other are element-wise equal.
func (v IntVec) Equal(other IntVec) bool {
	if len(v) != len(other) {
		return false
	}
	for i := range v {
		if v[i] != other[i] {
			return false
		}
	}
	return true
}

func (v IntVec) String() string { return fmt.Sprint([]int(v)) }
