package mat

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestNewDimensions(t *testing.T) {
	m := New(3, 4)
	if m.Rows() != 3 || m.Cols() != 4 {
		t.Fatalf("got %d×%d, want 3×4", m.Rows(), m.Cols())
	}
	if m.IsSquare() {
		t.Error("3×4 matrix reported square")
	}
	if !NewSquare(5).IsSquare() {
		t.Error("NewSquare(5) not square")
	}
}

func TestNewPanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(-1, 2) did not panic")
		}
	}()
	New(-1, 2)
}

func TestSetAtAdd(t *testing.T) {
	m := New(2, 2)
	m.Set(0, 1, 3.5)
	if got := m.At(0, 1); got != 3.5 {
		t.Errorf("At(0,1) = %v, want 3.5", got)
	}
	m.Add(0, 1, 1.5)
	if got := m.At(0, 1); got != 5 {
		t.Errorf("after Add, At(0,1) = %v, want 5", got)
	}
	if got := m.At(1, 0); got != 0 {
		t.Errorf("untouched element = %v, want 0", got)
	}
}

func TestAtPanicsOutOfRange(t *testing.T) {
	m := New(2, 2)
	for _, idx := range [][2]int{{-1, 0}, {0, -1}, {2, 0}, {0, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("At(%d,%d) did not panic", idx[0], idx[1])
				}
			}()
			m.At(idx[0], idx[1])
		}()
	}
}

func TestFrom(t *testing.T) {
	m, err := From([][]float64{{1, 2}, {3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if m.At(1, 0) != 3 {
		t.Errorf("At(1,0) = %v, want 3", m.At(1, 0))
	}
	if _, err := From([][]float64{{1, 2}, {3}}); err == nil {
		t.Error("ragged From did not error")
	}
	if m, err := From(nil); err != nil || m.Rows() != 0 {
		t.Errorf("From(nil) = %v, %v; want empty matrix", m, err)
	}
}

func TestMustFromPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustFrom(ragged) did not panic")
		}
	}()
	MustFrom([][]float64{{1}, {2, 3}})
}

func TestCloneIsDeep(t *testing.T) {
	m := MustFrom([][]float64{{1, 2}, {3, 4}})
	c := m.Clone()
	c.Set(0, 0, 99)
	if m.At(0, 0) != 1 {
		t.Error("Clone shares storage with original")
	}
}

func TestFillScale(t *testing.T) {
	m := New(2, 3)
	m.Fill(2)
	m.Scale(3)
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			if m.At(i, j) != 6 {
				t.Fatalf("At(%d,%d) = %v, want 6", i, j, m.At(i, j))
			}
		}
	}
}

func TestRowAndSums(t *testing.T) {
	m := MustFrom([][]float64{{1, 2, 3}, {4, 5, 6}})
	row := m.Row(1)
	if row[0] != 4 || row[2] != 6 {
		t.Errorf("Row(1) = %v", row)
	}
	row[0] = 100
	if m.At(1, 0) != 4 {
		t.Error("Row returned a view, want a copy")
	}
	if got := m.RowSum(0); got != 6 {
		t.Errorf("RowSum(0) = %v, want 6", got)
	}
	if got := m.ColSum(2); got != 9 {
		t.Errorf("ColSum(2) = %v, want 9", got)
	}
	if got := m.Sum(); got != 21 {
		t.Errorf("Sum = %v, want 21", got)
	}
}

func TestMax(t *testing.T) {
	m := MustFrom([][]float64{{-5, -1}, {-3, -2}})
	if got := m.Max(); got != -1 {
		t.Errorf("Max = %v, want -1", got)
	}
	if got := New(0, 0).Max(); got != 0 {
		t.Errorf("empty Max = %v, want 0", got)
	}
}

func TestMaxOffDiagonal(t *testing.T) {
	m := MustFrom([][]float64{
		{100, 2, 3},
		{4, 100, 6},
		{7, 5, 100},
	})
	v, i, j, err := m.MaxOffDiagonal()
	if err != nil {
		t.Fatal(err)
	}
	if v != 7 || i != 2 || j != 0 {
		t.Errorf("MaxOffDiagonal = (%v,%d,%d), want (7,2,0)", v, i, j)
	}
	one := NewSquare(1)
	if v, i, j, err := one.MaxOffDiagonal(); err != nil || v != 0 || i != -1 || j != -1 {
		t.Errorf("1×1 MaxOffDiagonal = (%v,%d,%d,%v), want (0,-1,-1,nil)", v, i, j, err)
	}
	if _, _, _, err := New(2, 3).MaxOffDiagonal(); err == nil {
		t.Error("MaxOffDiagonal on a 2×3 matrix: want error")
	}
}

func TestAddMatrix(t *testing.T) {
	a := MustFrom([][]float64{{1, 2}, {3, 4}})
	b := MustFrom([][]float64{{10, 20}, {30, 40}})
	if err := a.AddMatrix(b); err != nil {
		t.Fatal(err)
	}
	if a.At(1, 1) != 44 {
		t.Errorf("At(1,1) = %v, want 44", a.At(1, 1))
	}
	if err := a.AddMatrix(New(3, 2)); err == nil {
		t.Error("dimension mismatch did not error")
	}
}

func TestSymmetrizeAndIsSymmetric(t *testing.T) {
	m := MustFrom([][]float64{{1, 4}, {2, 1}})
	if m.IsSymmetric(0) {
		t.Error("asymmetric matrix reported symmetric")
	}
	if err := m.Symmetrize(); err != nil {
		t.Fatal(err)
	}
	if !m.IsSymmetric(1e-12) {
		t.Error("Symmetrize did not produce a symmetric matrix")
	}
	if m.At(0, 1) != 3 || m.At(1, 0) != 3 {
		t.Errorf("symmetrized off-diagonal = %v/%v, want 3/3", m.At(0, 1), m.At(1, 0))
	}
	if err := New(2, 3).Symmetrize(); err == nil {
		t.Error("Symmetrize on a 2×3 matrix: want error")
	}
	if New(2, 3).IsSymmetric(0) {
		t.Error("non-square matrix reported symmetric")
	}
}

func TestTranspose(t *testing.T) {
	m := MustFrom([][]float64{{1, 2, 3}, {4, 5, 6}})
	tr := m.Transpose()
	if tr.Rows() != 3 || tr.Cols() != 2 {
		t.Fatalf("transpose is %d×%d, want 3×2", tr.Rows(), tr.Cols())
	}
	if tr.At(2, 1) != 6 {
		t.Errorf("At(2,1) = %v, want 6", tr.At(2, 1))
	}
}

func TestEqual(t *testing.T) {
	a := MustFrom([][]float64{{1, 2}})
	b := MustFrom([][]float64{{1, 2.0000001}})
	if !a.Equal(b, 1e-3) {
		t.Error("near-equal matrices not Equal at tol 1e-3")
	}
	if a.Equal(b, 1e-9) {
		t.Error("matrices Equal at too-tight tolerance")
	}
	if a.Equal(New(2, 1), 1) {
		t.Error("different shapes reported Equal")
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	m := MustFrom([][]float64{{1.5, -2}, {0, 1e9}})
	var buf bytes.Buffer
	if _, err := m.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Equal(got, 0) {
		t.Errorf("round trip mismatch:\n%v\nvs\n%v", m, got)
	}
}

func TestReadErrors(t *testing.T) {
	cases := []string{
		"",
		"2\n",
		"a b\n",
		"2 a\n",
		"-1 2\n",
		"1 2\n1\n",
		"1 2\n1 x\n",
		"2 1\n1\n", // missing second row
	}
	for _, c := range cases {
		if _, err := Read(strings.NewReader(c)); err == nil {
			t.Errorf("Read(%q) succeeded, want error", c)
		}
	}
}

// Property: WriteTo/Read round-trips arbitrary matrices.
func TestQuickRoundTrip(t *testing.T) {
	f := func(seed int64, rows, cols uint8) bool {
		r := rand.New(rand.NewSource(seed))
		nr, nc := int(rows%8)+1, int(cols%8)+1
		m := New(nr, nc)
		for i := 0; i < nr; i++ {
			for j := 0; j < nc; j++ {
				m.Set(i, j, math.Round(r.NormFloat64()*1e6)/1e3)
			}
		}
		var buf bytes.Buffer
		if _, err := m.WriteTo(&buf); err != nil {
			return false
		}
		got, err := Read(&buf)
		if err != nil {
			return false
		}
		return m.Equal(got, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Symmetrize is idempotent and preserves the total sum.
func TestQuickSymmetrize(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%10) + 1
		r := rand.New(rand.NewSource(seed))
		m := NewSquare(n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				m.Set(i, j, r.Float64()*100)
			}
		}
		before := m.Sum()
		if err := m.Symmetrize(); err != nil {
			return false
		}
		if !m.IsSymmetric(1e-9) {
			return false
		}
		if math.Abs(m.Sum()-before) > 1e-6 {
			return false
		}
		again := m.Clone()
		if err := again.Symmetrize(); err != nil {
			return false
		}
		return again.Equal(m, 1e-12)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: transpose twice is the identity.
func TestQuickTransposeTwice(t *testing.T) {
	f := func(seed int64, rRaw, cRaw uint8) bool {
		nr, nc := int(rRaw%6)+1, int(cRaw%6)+1
		rng := rand.New(rand.NewSource(seed))
		m := New(nr, nc)
		for i := 0; i < nr; i++ {
			for j := 0; j < nc; j++ {
				m.Set(i, j, rng.Float64())
			}
		}
		return m.Transpose().Transpose().Equal(m, 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
