package mat

import (
	"strings"
	"testing"
)

// FuzzRead drives the matrix text parser with arbitrary inputs: it must
// never panic, and whatever it accepts must re-serialize to an equal
// matrix.
func FuzzRead(f *testing.F) {
	f.Add("2 2\n1 2\n3 4\n")
	f.Add("1 1\n-5.5\n")
	f.Add("0 0\n")
	f.Add("2 2\n1 2\n3\n")
	f.Add("x y\n")
	f.Add("1 3\n1e308 -1e308 0\n")
	f.Fuzz(func(t *testing.T, input string) {
		m, err := Read(strings.NewReader(input))
		if err != nil {
			return
		}
		var buf strings.Builder
		if _, err := m.WriteTo(&buf); err != nil {
			t.Fatalf("accepted matrix failed to serialize: %v", err)
		}
		again, err := Read(strings.NewReader(buf.String()))
		if err != nil {
			t.Fatalf("serialized form rejected: %v", err)
		}
		// NaN never round-trips as Equal; skip those inputs.
		hasNaN := false
		for i := 0; i < m.Rows(); i++ {
			for j := 0; j < m.Cols(); j++ {
				if m.At(i, j) != m.At(i, j) {
					hasNaN = true
				}
			}
		}
		if !hasNaN && !m.Equal(again, 0) {
			t.Fatalf("round trip changed matrix:\n%v\nvs\n%v", m, again)
		}
	})
}
