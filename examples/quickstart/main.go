// Quickstart: map an NPB LU run onto the paper's four-region EC2 cloud and
// compare the Geo-distributed mapping against a random baseline.
//
// This walks the library's whole pipeline by hand — cloud model,
// application profiling, network calibration, problem assembly, mapping,
// and simulation — the same steps the higher-level experiments package
// automates.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"geoprocmap/internal/apps"
	"geoprocmap/internal/calib"
	"geoprocmap/internal/core"
	"geoprocmap/internal/netmodel"
	"geoprocmap/internal/netsim"
	"geoprocmap/internal/stats"
)

func main() {
	// 1. Model the cloud: 4 EC2 regions × 16 m4.xlarge instances (the
	// paper's testbed).
	cloud, err := netmodel.PaperCloud(1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cloud: %d sites, %d nodes\n", cloud.M(), cloud.TotalNodes())

	// 2. Profile the application: trace one iteration of LU on 64
	// processes and aggregate its CG/AG communication pattern.
	app := apps.NewLU()
	rec, err := app.Trace(64, 1)
	if err != nil {
		log.Fatal(err)
	}
	pattern := rec.Graph()
	fmt.Printf("profiled %s: %d messages, %.1f MB per iteration\n",
		app.Name(), rec.Len(), pattern.TotalVolume()/netmodel.MB)

	// 3. Calibrate the network: ping-pong probes of every site pair give
	// the LT/BT matrices (O(M²) sessions, not O(N²)).
	cal, err := calib.Calibrate(cloud, calib.Options{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("calibrated %d site-pair sessions in %.0f simulated minutes\n",
		cal.SitePairSessions, cal.OverheadSeconds.Float()/60)

	// 4. Assemble the mapping problem. No data-movement constraints here;
	// see examples/privacy for pinned processes.
	problem := &core.Problem{
		Comm:       pattern,
		LT:         cal.LT,
		BT:         cal.BT,
		PC:         cloud.Coordinates(),
		Capacity:   cloud.Capacity(),
		Constraint: make(core.Placement, pattern.N()),
	}
	for i := range problem.Constraint {
		problem.Constraint[i] = core.Unconstrained
	}

	// 5. Map with the paper's Geo-distributed algorithm.
	mapper := &core.GeoMapper{Kappa: 4, Seed: 1}
	placement, err := mapper.Map(problem)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("geo cost:    %.3f\n", problem.Cost(placement))

	// 6. Compare against random mappings, in cost and in simulated time.
	rng := stats.NewRand(7)
	random, err := core.RandomPlacement(problem, rng)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("random cost: %.3f\n", problem.Cost(random))

	simGeo, err := netsim.New(cloud, placement)
	if err != nil {
		log.Fatal(err)
	}
	simRand, err := netsim.New(cloud, random)
	if err != nil {
		log.Fatal(err)
	}
	tGeo, err := simGeo.ReplayTrace(rec.Events())
	if err != nil {
		log.Fatal(err)
	}
	tRand, err := simRand.ReplayTrace(rec.Events())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulated comm time per iteration: geo %.2fs vs random %.2fs (%.0f%% faster)\n",
		tGeo, tRand, (tRand-tGeo).Float()/tRand.Float()*100)
}
