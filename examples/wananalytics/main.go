// WAN analytics: a geo-distributed K-means job over six EC2 regions. With
// this many sites a κ! order search over raw sites would explore 720
// orders; the grouping optimization clusters the six regions into κ=3
// geographic groups first, cutting the search to 6 orders while keeping
// the solution quality.
//
// Run with: go run ./examples/wananalytics
package main

import (
	"fmt"
	"log"

	"geoprocmap/internal/apps"
	"geoprocmap/internal/baselines"
	"geoprocmap/internal/calib"
	"geoprocmap/internal/core"
	"geoprocmap/internal/netmodel"
)

func main() {
	regions := []string{
		"us-east-1", "us-west-2", // Americas
		"eu-west-1", "eu-central-1", // Europe
		"ap-southeast-1", "ap-northeast-1", // Asia
	}
	const nodesPerSite = 8
	cloud, err := netmodel.EvenCloud(netmodel.AmazonEC2, "m4.xlarge", regions, nodesPerSite, netmodel.Options{Seed: 5})
	if err != nil {
		log.Fatal(err)
	}
	n := cloud.TotalNodes()

	pattern, err := apps.Graph(apps.NewKMeans(), n, 1)
	if err != nil {
		log.Fatal(err)
	}
	cal, err := calib.Calibrate(cloud, calib.Options{Seed: 5})
	if err != nil {
		log.Fatal(err)
	}
	constraint := make(core.Placement, n)
	for i := range constraint {
		constraint[i] = core.Unconstrained
	}
	problem := &core.Problem{
		Comm:       pattern,
		LT:         cal.LT,
		BT:         cal.BT,
		PC:         cloud.Coordinates(),
		Capacity:   cloud.Capacity(),
		Constraint: constraint,
	}

	// Show the geographic groups the K-means step finds.
	groups, err := core.GroupSites(problem.PC, 3, 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("site groups (κ=3 K-means over coordinates):")
	for gi, g := range groups {
		fmt.Printf("  group %d:", gi)
		for _, s := range g {
			fmt.Printf(" %s", cloud.Sites[s].Region.Name)
		}
		fmt.Println()
	}

	fmt.Printf("\nmapping %d K-means processes over %d regions:\n", n, len(regions))
	for _, mapper := range []core.Mapper{
		&baselines.Random{Seed: 5},
		&baselines.Greedy{},
		&baselines.MPIPP{Seed: 5},
		&core.GeoMapper{Kappa: 3, Seed: 5},
	} {
		pl, err := mapper.Map(problem)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-16s cost %9.3f\n", mapper.Name(), problem.Cost(pl))
	}
}
