// Multi-site constraints: the paper's future-work extension in action.
//
// The original model pins a constrained process to exactly ONE site. Real
// residency rules are usually regional: "EU personal data may be processed
// in any EU region". This example runs a K-means job over six regions
// where EU-data processes may use either EU region, US-data processes
// either US region, and APAC processes either Asian region — and shows
// the Geo-distributed mapper exploiting that slack (a single-site pin of
// the same data is strictly worse).
//
// Run with: go run ./examples/multiconstraint
package main

import (
	"fmt"
	"log"

	"geoprocmap/internal/apps"
	"geoprocmap/internal/calib"
	"geoprocmap/internal/core"
	"geoprocmap/internal/netmodel"
)

func main() {
	regions := []string{
		"us-east-1", "us-west-2",
		"eu-west-1", "eu-central-1",
		"ap-southeast-1", "ap-northeast-1",
	}
	const nodesPerSite = 8
	cloud, err := netmodel.EvenCloud(netmodel.AmazonEC2, "m4.xlarge", regions, nodesPerSite, netmodel.Options{Seed: 9})
	if err != nil {
		log.Fatal(err)
	}
	n := cloud.TotalNodes()

	pattern, err := apps.Graph(apps.NewKMeans(), n, 1)
	if err != nil {
		log.Fatal(err)
	}
	cal, err := calib.Calibrate(cloud, calib.Options{Seed: 9})
	if err != nil {
		log.Fatal(err)
	}

	newProblem := func() *core.Problem {
		constraint := make(core.Placement, n)
		for i := range constraint {
			constraint[i] = core.Unconstrained
		}
		return &core.Problem{
			Comm:       pattern,
			LT:         cal.LT,
			BT:         cal.BT,
			PC:         cloud.Coordinates(),
			Capacity:   cloud.Capacity(),
			Constraint: constraint,
		}
	}

	us := []int{0, 1}
	eu := []int{2, 3}
	apac := []int{4, 5}

	// Variant A: regional (multi-site) residency — 8 processes per data
	// region, each free to use either of its region's sites.
	regional := newProblem()
	regional.Allowed = make([][]int, n)
	for i := 0; i < 8; i++ {
		regional.Allowed[i] = us
		regional.Allowed[8+i] = eu
		regional.Allowed[16+i] = apac
	}
	if err := regional.Validate(); err != nil {
		log.Fatal(err)
	}

	// Variant B: the paper's single-site pins for the same data (each
	// process pinned to the first site of its region).
	pinned := newProblem()
	for i := 0; i < 8; i++ {
		pinned.Constraint[i] = us[0]
		pinned.Constraint[8+i] = eu[0]
		pinned.Constraint[16+i] = apac[0]
	}
	if err := pinned.Validate(); err != nil {
		log.Fatal(err)
	}

	mapper := &core.GeoMapper{Kappa: 3, Seed: 9}
	regPl, err := mapper.Map(regional)
	if err != nil {
		log.Fatal(err)
	}
	pinPl, err := mapper.Map(pinned)
	if err != nil {
		log.Fatal(err)
	}
	if err := regional.CheckPlacement(regPl); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%d processes over %d regions, 24 residency-constrained:\n\n", n, len(regions))
	fmt.Printf("  regional sets (any EU / any US / any APAC site):  cost %.3f\n", regional.Cost(regPl))
	fmt.Printf("  single-site pins (paper's original model):        cost %.3f\n", pinned.Cost(pinPl))
	fmt.Printf("\nthe multi-site sets leave the optimizer room: %.1f%% cheaper than hard pins\n",
		(pinned.Cost(pinPl)-regional.Cost(regPl)).Float()/pinned.Cost(pinPl).Float()*100)
}
