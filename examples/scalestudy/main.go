// Scale study: how the Geo-distributed mapper's solution quality and
// optimization overhead evolve from 64 to 1024 machines (the regime of the
// paper's Figure 7), measured with the trace-replay simulator.
//
// Run with: go run ./examples/scalestudy
package main

import (
	"fmt"
	"log"

	"geoprocmap/internal/apps"
	"geoprocmap/internal/baselines"
	"geoprocmap/internal/core"
	"geoprocmap/internal/experiments"
)

func main() {
	fmt.Printf("%8s %14s %14s %16s\n", "machines", "greedy imp.", "geo imp.", "geo overhead")
	for _, n := range []int{64, 128, 256, 512, 1024} {
		cloud, err := experiments.PaperCloudForScale(n, 2)
		if err != nil {
			log.Fatal(err)
		}
		inst, err := experiments.BuildInstance(cloud, apps.NewLU(), n, 1, 0.2, 2)
		if err != nil {
			log.Fatal(err)
		}
		base, err := inst.BaselineSim(3, 99, experiments.SimReplay)
		if err != nil {
			log.Fatal(err)
		}
		improvement := func(m core.Mapper) (float64, string) {
			placement, took, err := inst.MapAndTime(m)
			if err != nil {
				log.Fatal(err)
			}
			res, err := inst.Simulate(placement, experiments.SimReplay)
			if err != nil {
				log.Fatal(err)
			}
			return experiments.ImprovementPct(base.CommSeconds, res.CommSeconds), took.String()
		}
		gImp, _ := improvement(&baselines.Greedy{})
		oImp, oDur := improvement(&core.GeoMapper{Kappa: 4, Seed: 2})
		fmt.Printf("%8d %13.1f%% %13.1f%% %16s\n", n, gImp, oImp, oDur)
	}
}
