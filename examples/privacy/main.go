// Privacy constraints: run a K-means analytics job where the processes
// that touch EU personal data are pinned to the Ireland region (GDPR-style
// data residency), and show that the Geo-distributed mapper optimizes the
// remaining freedom while honoring every pin.
//
// This is the paper's data-movement-constraint scenario (Section 3.1): "in
// case of different privacy levels, only data from sites with high privacy
// levels are constrained to their own sites".
//
// Run with: go run ./examples/privacy
package main

import (
	"fmt"
	"log"

	"geoprocmap/internal/apps"
	"geoprocmap/internal/baselines"
	"geoprocmap/internal/calib"
	"geoprocmap/internal/core"
	"geoprocmap/internal/netmodel"
)

func main() {
	const n = 64
	cloud, err := netmodel.PaperCloud(3)
	if err != nil {
		log.Fatal(err)
	}
	// Site order: us-east-1, us-west-1, ap-southeast-1, eu-west-1.
	const ireland = 3

	pattern, err := apps.Graph(apps.NewKMeans(), n, 1)
	if err != nil {
		log.Fatal(err)
	}
	cal, err := calib.Calibrate(cloud, calib.Options{Seed: 3})
	if err != nil {
		log.Fatal(err)
	}

	// Processes 0–11 hold EU user records: they must stay in Ireland.
	constraint := make(core.Placement, n)
	for i := range constraint {
		constraint[i] = core.Unconstrained
	}
	for i := 0; i < 12; i++ {
		constraint[i] = ireland
	}

	problem := &core.Problem{
		Comm:       pattern,
		LT:         cal.LT,
		BT:         cal.BT,
		PC:         cloud.Coordinates(),
		Capacity:   cloud.Capacity(),
		Constraint: constraint,
	}
	if err := problem.Validate(); err != nil {
		log.Fatal(err)
	}

	for _, mapper := range []core.Mapper{
		&baselines.Random{Seed: 3},
		&baselines.Greedy{},
		&core.GeoMapper{Kappa: 4, Seed: 3},
	} {
		pl, err := mapper.Map(problem)
		if err != nil {
			log.Fatal(err)
		}
		// Every mapper must keep the EU processes in Ireland.
		for i := 0; i < 12; i++ {
			if pl[i] != ireland {
				log.Fatalf("%s violated the residency constraint for process %d", mapper.Name(), i)
			}
		}
		fmt.Printf("%-16s cost %8.3f   (12 EU processes pinned to %s)\n",
			mapper.Name(), problem.Cost(pl), cloud.Sites[ireland].Region.Display)
	}
	fmt.Println("\nall mappers satisfy the GDPR pins; the Geo-distributed mapper has the lowest cost")
}
