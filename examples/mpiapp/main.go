// Virtual-MPI application: the full workflow a downstream user follows.
//
//  1. Write a rank program against the mpi package (here: a 1-D halo
//     exchange stencil with a periodic global residual allreduce).
//  2. Profile it — run once under a naive mapping; every message lands in
//     a trace, which aggregates into the CG/AG pattern.
//  3. Calibrate the cloud and solve the mapping problem with the paper's
//     Geo-distributed algorithm.
//  4. Re-run the same program under the optimized placement and compare
//     virtual execution times.
//
// Run with: go run ./examples/mpiapp
package main

import (
	"fmt"
	"log"

	"geoprocmap/internal/calib"
	"geoprocmap/internal/core"
	"geoprocmap/internal/mpi"
	"geoprocmap/internal/netmodel"
)

const (
	n          = 64
	iterations = 10
	haloBytes  = 256 << 10 // 256 KB boundary exchange
)

// stencil is the rank program: compute, exchange halos with ring
// neighbors, and reduce a residual every iteration.
func stencil(c *mpi.Comm) error {
	left := (c.Rank() + c.Size() - 1) % c.Size()
	right := (c.Rank() + 1) % c.Size()
	for it := 0; it < iterations; it++ {
		if err := c.Compute(0.05); err != nil {
			return err
		}
		// Halo exchange with both neighbors; pair by parity so the
		// rendezvous sends interleave without deadlock.
		if c.Rank()%2 == 0 {
			if err := c.Send(right, haloBytes, it*4); err != nil {
				return err
			}
			if err := c.Recv(right, it*4+1); err != nil {
				return err
			}
			if err := c.Send(left, haloBytes, it*4+2); err != nil {
				return err
			}
			if err := c.Recv(left, it*4+3); err != nil {
				return err
			}
		} else {
			if err := c.Recv(left, it*4); err != nil {
				return err
			}
			if err := c.Send(left, haloBytes, it*4+1); err != nil {
				return err
			}
			if err := c.Recv(right, it*4+2); err != nil {
				return err
			}
			if err := c.Send(right, haloBytes, it*4+3); err != nil {
				return err
			}
		}
		// Global residual.
		if err := c.Allreduce(8, 1000+2*it); err != nil {
			return err
		}
	}
	return nil
}

func main() {
	cloud, err := netmodel.PaperCloud(6)
	if err != nil {
		log.Fatal(err)
	}

	// Step 1+2: profile under a naive round-robin mapping.
	naive := make([]int, n)
	for i := range naive {
		naive[i] = i % cloud.M()
	}
	world, err := mpi.NewWorld(cloud, naive)
	if err != nil {
		log.Fatal(err)
	}
	profiled, err := world.Run(stencil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("profiling run (round-robin mapping): %.2f s virtual, %d messages traced\n",
		profiled.Elapsed, profiled.Trace.Len())

	// Step 3: assemble and solve the mapping problem from the trace.
	cal, err := calib.Calibrate(cloud, calib.Options{Seed: 6})
	if err != nil {
		log.Fatal(err)
	}
	constraint := make(core.Placement, n)
	for i := range constraint {
		constraint[i] = core.Unconstrained
	}
	problem := &core.Problem{
		Comm:       profiled.Trace.Graph(),
		LT:         cal.LT,
		BT:         cal.BT,
		PC:         cloud.Coordinates(),
		Capacity:   cloud.Capacity(),
		Constraint: constraint,
	}
	placement, err := (&core.GeoMapper{Kappa: 4, Seed: 6}).Map(problem)
	if err != nil {
		log.Fatal(err)
	}

	// Step 4: re-run under the optimized placement.
	optimized, err := mpi.NewWorld(cloud, placement)
	if err != nil {
		log.Fatal(err)
	}
	better, err := optimized.Run(stencil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("optimized run (Geo-distributed mapping): %.2f s virtual\n", better.Elapsed)
	fmt.Printf("speedup: %.1f× (%.0f%% faster)\n",
		profiled.Elapsed/better.Elapsed,
		(profiled.Elapsed-better.Elapsed)/profiled.Elapsed*100)
}
