// Topology-aware collectives: after the Geo-distributed mapper has placed
// processes, the collective algorithms themselves can exploit the same
// site structure. This example times flat recursive-doubling, ring, and
// MagPIe-style hierarchical allreduce schedules on the paper's four-region
// cloud under a good placement — showing why wide-area MPI libraries
// (Kielmann et al., cited in the paper's related work) restructure their
// trees around slow links.
//
// Run with: go run ./examples/collectives
package main

import (
	"fmt"
	"log"

	"geoprocmap/internal/collectives"
	"geoprocmap/internal/netmodel"
	"geoprocmap/internal/netsim"
)

func main() {
	cloud, err := netmodel.PaperCloud(4)
	if err != nil {
		log.Fatal(err)
	}
	const n = 64
	// A block placement — what the Geo-distributed mapper converges to for
	// collective-heavy workloads.
	placement := make([]int, n)
	for i := range placement {
		placement[i] = i / 16
	}
	sim, err := netsim.New(cloud, placement) // shared WAN pipes
	if err != nil {
		log.Fatal(err)
	}

	const payload = 1 << 20
	flat, err := collectives.RecursiveDoublingAllreduce(n, payload)
	if err != nil {
		log.Fatal(err)
	}
	ring, err := collectives.RingAllreduce(n, payload)
	if err != nil {
		log.Fatal(err)
	}
	hier, err := collectives.HierarchicalAllreduce(placement, payload)
	if err != nil {
		log.Fatal(err)
	}

	crossings := func(s *collectives.Schedule) int {
		c := 0
		for _, round := range s.Rounds {
			for _, m := range round {
				if placement[m.Src] != placement[m.Dst] {
					c++
				}
			}
		}
		return c
	}

	fmt.Printf("1 MB allreduce over %d processes in 4 regions:\n\n", n)
	fmt.Printf("%-28s %8s %10s %14s\n", "algorithm", "rounds", "WAN msgs", "simulated (s)")
	for _, v := range []struct {
		name string
		s    *collectives.Schedule
	}{
		{"recursive doubling (flat)", flat},
		{"ring (flat)", ring},
		{"hierarchical (MagPIe-style)", hier},
	} {
		t, err := sim.ReplayTrace(v.s.Events(0))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-28s %8d %10d %14.3f\n", v.name, len(v.s.Rounds), crossings(v.s), t)
	}
	fmt.Println("\nthe hierarchy crosses each WAN link once per phase — placement and algorithm compose")
}
