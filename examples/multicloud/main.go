// Multi-cloud deployment: the paper's final future-work item ("the more
// complicated geo-distributed environment with multiple cloud providers").
//
// This example merges an EC2 deployment (US East + Ireland) with an Azure
// deployment (East US + West Europe) into one six-site cloud where
// cross-provider peering links are derated below either provider's
// backbone, then maps a K-means job across it. The interesting dynamic:
// EC2 us-east-1 and Azure east-us are ~300 km apart, but the peering
// penalty means the mapper should still prefer keeping heavy cliques
// within one provider.
//
// Run with: go run ./examples/multicloud
package main

import (
	"fmt"
	"log"

	"geoprocmap/internal/apps"
	"geoprocmap/internal/baselines"
	"geoprocmap/internal/calib"
	"geoprocmap/internal/core"
	"geoprocmap/internal/netmodel"
)

func main() {
	ec2, err := netmodel.EvenCloud(netmodel.AmazonEC2, "m4.xlarge",
		[]string{"us-east-1", "eu-west-1"}, 8, netmodel.Options{Seed: 11})
	if err != nil {
		log.Fatal(err)
	}
	azure, err := netmodel.EvenCloud(netmodel.WindowsAzure, "Standard_D2",
		[]string{"east-us", "west-europe"}, 8, netmodel.Options{Seed: 12})
	if err != nil {
		log.Fatal(err)
	}
	cloud, err := netmodel.MergeClouds(ec2, azure, 13)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("merged cloud: %d sites, %d nodes\n", cloud.M(), cloud.TotalNodes())
	fmt.Println("\nbandwidth matrix (MB/s): EC2 {us-east, ireland} × Azure {east-us, w-europe}")
	for k := 0; k < cloud.M(); k++ {
		for l := 0; l < cloud.M(); l++ {
			fmt.Printf("%8.1f", cloud.BT.At(k, l)/netmodel.MB)
		}
		fmt.Printf("   %s\n", cloud.Sites[k].Region.Name)
	}
	fmt.Println("\nnote the cheap intra-provider blocks vs the derated peering links,")
	fmt.Println("even between the geographically adjacent us-east-1 and east-us.")

	n := cloud.TotalNodes()
	pattern, err := apps.Graph(apps.NewKMeans(), n, 1)
	if err != nil {
		log.Fatal(err)
	}
	cal, err := calib.Calibrate(cloud, calib.Options{Seed: 13})
	if err != nil {
		log.Fatal(err)
	}
	constraint := make(core.Placement, n)
	for i := range constraint {
		constraint[i] = core.Unconstrained
	}
	problem := &core.Problem{
		Comm:       pattern,
		LT:         cal.LT,
		BT:         cal.BT,
		PC:         cloud.Coordinates(),
		Capacity:   cloud.Capacity(),
		Constraint: constraint,
	}
	fmt.Printf("\nmapping %d K-means processes across both providers:\n", n)
	for _, mapper := range []core.Mapper{
		&baselines.Random{Seed: 13},
		&baselines.Greedy{},
		&core.GeoMapper{Kappa: 3, Seed: 13},
	} {
		pl, err := mapper.Map(problem)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-16s cost %9.3f\n", mapper.Name(), problem.Cost(pl))
	}
}
