// Package geoprocmap reproduces "Efficient Process Mapping in
// Geo-Distributed Cloud Data Centers" (Zhou, Gong, He, Zhai — SC 2017,
// DOI 10.1145/3126908.3126913) as a self-contained Go library.
//
// The implementation lives under internal/: the paper's contribution is
// internal/core (problem formulation and the Geo-distributed algorithm),
// with the compared algorithms in internal/baselines and the substrates —
// cloud network model, flow-level simulator, trace profiler, workloads,
// calibration — in their own packages. The cmd/ directory holds the
// geomap, geobench, geocalibrate and geosim tools, examples/ holds
// runnable walkthroughs, and the benchmarks in this package regenerate
// every table and figure of the paper's evaluation.
//
// See README.md for the architecture overview, DESIGN.md for the system
// inventory and experiment index, and EXPERIMENTS.md for paper-vs-measured
// results.
package geoprocmap
