module geoprocmap

go 1.22
