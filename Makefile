GO ?= go

.PHONY: all build vet lint test race check

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Repo-specific static analysis (internal/analysis via cmd/geolint).
# Exits non-zero on any finding not suppressed by a justified
# //geolint:ignore directive.
lint:
	$(GO) run ./cmd/geolint ./...

test:
	$(GO) test ./...

# Race-detector pass over the packages that spawn goroutines (the virtual
# MPI scheduler and the network simulator).
race:
	$(GO) test -race ./internal/mpi/... ./internal/netsim/...

check: build vet lint test race
