GO ?= go

.PHONY: all build vet lint test race faults serve-smoke serve-cluster regauge-smoke multilevel-smoke bench-orders bench-alloc bench-refine check

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Repo-specific static analysis (internal/analysis via cmd/geolint), with
# go vet alongside. Exits non-zero on any finding not suppressed by a
# justified //geolint:ignore directive; -staleignores also fails on
# directives that no longer suppress anything.
lint: vet
	$(GO) run ./cmd/geolint -staleignores ./...

test:
	$(GO) test ./...

# Race-detector pass over the packages that spawn goroutines (the virtual
# MPI scheduler, the network simulator, the mapping service's pool/
# cache/snapshot-store, the core mapper's parallel order search, and the
# re-gauging control loop), plus the analysis loader's concurrent
# type-check waves.
race:
	$(GO) test -race ./internal/mpi/... ./internal/netsim/... ./internal/service/... ./internal/core/... ./internal/regauge/... ./internal/multilevel/...
	$(GO) test -race -run TestLoadParallelDeterministic ./internal/analysis

# Fault-injection smoke: replay LU through the FlakyWAN preset and run the
# failure-aware remap path end to end (internal/faults + netsim faulty
# engines + core.Remap). Must terminate without hangs or leaks.
faults:
	$(GO) run ./cmd/geosim -app LU -n 64 -faults FlakyWAN

# Service smoke: boot geomapd on an ephemeral port, replay the same
# seeded geoload mix twice, and require byte-identical placement
# digests, a fully cache-served warm run, and a clean SIGTERM drain.
serve-smoke:
	./scripts/serve_smoke.sh

# Cluster smoke: boot a 3-daemon fleet wired via -peers (each pinned to
# GOMAXPROCS=1), and require byte-identical geoload digests between the
# single-node baseline and the hash-routed and round-robin fleet runs,
# nonzero cross-node peer_hits, >= 2x aggregate throughput on hosts with
# at least 4 cores (reported but unenforced under the single-core
# ceiling), and a clean SIGTERM drain of all three daemons.
serve-cluster:
	./scripts/serve_cluster_smoke.sh

# Re-gauging smoke: boot geomapd with the closed calibration loop live
# against FlakyWAN at a fast timescale, and require at least one
# automatic snapshot publication, at least one hysteresis-suppressed
# remap, and a clean drain that stops the loop.
regauge-smoke:
	./scripts/regauge_smoke.sh

# Multilevel smoke: map a 16-site, 4096-process instance with the
# multilevel pipeline at Workers = 1 and Workers = GOMAXPROCS under a
# wall-clock budget; the run fails unless the two placements are
# byte-identical.
multilevel-smoke:
	./scripts/multilevel_smoke.sh

# Serial-vs-parallel order-search baseline: full-scale sweep (κ = 6..8,
# N = 64/256) written to results/BENCH_orders.json. Speedup depends on
# host core count, which the report records.
bench-orders:
	$(GO) run ./cmd/geobench -exp orders -out results -json
	cp results/orders.json results/BENCH_orders.json

# Zero-allocation gate: the BenchmarkAlloc* family measures every
# //geolint:allocfree hot path with -benchmem and fails on any nonzero
# allocs/op (the dynamic counterpart of the static allocsafe rule).
# Measurements land in results/BENCH_alloc.json; ns/op is informational.
bench-alloc:
	./scripts/bench_alloc.sh

# Refinement ns/move baseline: the BenchmarkRefineMove* family measures
# the multilevel local-search hot path (move/swap deltas, candidate scan,
# full proposal sweep) and fails on any nonzero allocs/op. Measurements
# land in results/BENCH_refine.json.
bench-refine:
	./scripts/bench_refine.sh

check: build vet lint test race faults serve-smoke serve-cluster regauge-smoke multilevel-smoke bench-alloc bench-refine
