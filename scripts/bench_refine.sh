#!/usr/bin/env bash
# bench-refine: ns/move baseline for the multilevel refinement hot path.
# Runs the BenchmarkRefineMove* family (move delta, swap delta, full
# per-vertex candidate scan, whole proposal sweep) with -benchmem, writes
# the measurements to results/BENCH_refine.json, and fails if any
# benchmark reports a nonzero allocs/op — the refinement inner loop is a
# //geolint:allocfree root and must stay allocation-free under load.
# ns/op is the tracked figure of merit; it is recorded, not gated.
set -euo pipefail

cd "$(dirname "$0")/.."
out=${1:-results/BENCH_refine.json}
tmp=$(mktemp)
trap 'rm -f "$tmp"' EXIT

go test -run '^$' -bench '^BenchmarkRefineMove' -benchmem -benchtime 1000x \
    ./internal/multilevel \
    | tee "$tmp"

# Parse `go test -bench` output lines of the form
#   BenchmarkRefineMoveDelta-8   1000   82 ns/op   0 B/op   0 allocs/op
# into a JSON array, and collect violators.
awk -v out="$out" '
BEGIN { n = 0; bad = "" }
$1 ~ /^BenchmarkRefineMove/ && $NF == "allocs/op" {
    name = $1
    sub(/-[0-9]+$/, "", name)
    ns[n] = $3; bytes[n] = $5; allocs[n] = $7; names[n] = name
    if ($7 + 0 != 0) bad = bad " " name
    n++
}
END {
    printf "[\n" > out
    for (i = 0; i < n; i++) {
        printf "  {\"benchmark\": \"%s\", \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}%s\n", \
            names[i], ns[i], bytes[i], allocs[i], (i < n - 1 ? "," : "") > out
    }
    printf "]\n" > out
    if (n == 0) { print "bench-refine: no BenchmarkRefineMove results parsed" > "/dev/stderr"; exit 1 }
    if (bad != "") { print "bench-refine: nonzero allocs/op in:" bad > "/dev/stderr"; exit 1 }
}
' "$tmp"

echo "bench-refine: $(grep -c benchmark "$out") benchmarks, all 0 allocs/op -> $out"
