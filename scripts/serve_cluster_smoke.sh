#!/usr/bin/env bash
# serve-cluster smoke: end-to-end gate for the sharded geomapd fleet.
# Boots one single daemon as a baseline, then a 3-node cluster wired via
# -peers, and requires:
#
#   1. byte-identical combined placement digests between the single-node
#      run, the hash-routed 3-node run, and the round-robin 3-node run —
#      the cross-node determinism contract at any fleet size;
#   2. real cluster traffic: the round-robin run lands most requests on
#      non-owners, so the fleet's summed peer_hits must be nonzero;
#   3. aggregate throughput scaling: every daemon runs under
#      GOMAXPROCS=1 so a single node cannot hide horizontal scaling
#      behind its own cores; with at least 4 host cores the 3-node fleet
#      must clear 2x the single node's req/s. On smaller hosts the three
#      daemons time-share the same cores — the single-core ceiling — so
#      the ratio is reported but not enforced;
#   4. a clean SIGTERM drain of all three daemons.
set -euo pipefail

cd "$(dirname "$0")/.."
tmp=$(mktemp -d)
pids=()
cleanup() {
    for pid in "${pids[@]:-}"; do
        [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
    done
    rm -rf "$tmp"
}
trap cleanup EXIT

go build -o "$tmp" ./cmd/geomapd ./cmd/geoload

PORT0=18080 PORT1=18081 PORT2=18082 PORT3=18083
for port in $PORT0 $PORT1 $PORT2 $PORT3; do
    if (exec 3<>"/dev/tcp/127.0.0.1/$port") 2>/dev/null; then
        exec 3>&- 3<&-
        echo "serve-cluster: port $port already in use" >&2
        exit 1
    fi
done

# The same seeded stream everywhere: mostly novel requests so throughput
# measures solving, not cache hits.
LOAD_ARGS=(-n 150 -c 8 -seed 7 -procs 64 -mix 0.2,0.8,0.0)

wait_ready() { # url
    for _ in $(seq 1 100); do
        if curl -sf "$1/healthz" >/dev/null 2>&1; then return 0; fi
        sleep 0.1
    done
    echo "serve-cluster: daemon at $1 never became healthy" >&2
    return 1
}

digest_of() { grep 'placement digest' "$1" | sed 's/.*digest: //'; }
reqps_of() { sed -n 's/.*(\([0-9.]*\) req\/s).*/\1/p' "$1" | head -1; }

# --- Baseline: one daemon, one core. -----------------------------------
GOMAXPROCS=1 "$tmp/geomapd" -addr "127.0.0.1:$PORT0" 2>"$tmp/single.log" &
pids[0]=$!
wait_ready "http://127.0.0.1:$PORT0"
"$tmp/geoload" -url "http://127.0.0.1:$PORT0" "${LOAD_ARGS[@]}" | tee "$tmp/run_single"
kill -TERM "${pids[0]}"
wait "${pids[0]}" || { echo "serve-cluster: baseline daemon exited non-zero" >&2; cat "$tmp/single.log" >&2; exit 1; }
pids[0]=""

# --- 3-node fleet, every daemon pinned to one core. --------------------
URLS="http://127.0.0.1:$PORT1,http://127.0.0.1:$PORT2,http://127.0.0.1:$PORT3"
for i in 1 2 3; do
    port_var="PORT$i"
    port=${!port_var}
    GOMAXPROCS=1 "$tmp/geomapd" -addr "127.0.0.1:$port" \
        -self "http://127.0.0.1:$port" -peers "$URLS" 2>"$tmp/node$i.log" &
    pids[$i]=$!
done
for i in 1 2 3; do
    port_var="PORT$i"
    wait_ready "http://127.0.0.1:${!port_var}"
done

# Hash-routed run: each request goes straight to its shard owner, so the
# fleet solves disjoint shards in parallel — the throughput measurement.
"$tmp/geoload" -url "$URLS" -route hash "${LOAD_ARGS[@]}" | tee "$tmp/run_hash"

# Round-robin run of the same stream: most requests land on non-owners
# and are answered through the peer-consult path (owners already hold
# the results, so this exercises cross-node cache fill, not re-solving).
"$tmp/geoload" -url "$URLS" -route rr "${LOAD_ARGS[@]}" | tee "$tmp/run_rr"

# --- Gate 1: digest identity at every fleet size and routing policy. ---
d_single=$(digest_of "$tmp/run_single")
d_hash=$(digest_of "$tmp/run_hash")
d_rr=$(digest_of "$tmp/run_rr")
if [ -z "$d_single" ] || [ "$d_single" != "$d_hash" ] || [ "$d_single" != "$d_rr" ]; then
    echo "serve-cluster: placement digests diverge across fleet sizes/routes" >&2
    echo "  single: $d_single" >&2
    echo "  hash:   $d_hash" >&2
    echo "  rr:     $d_rr" >&2
    exit 1
fi

# --- Gate 2: the cluster actually consulted peers. ---------------------
peer_hits=0
for i in 1 2 3; do
    port_var="PORT$i"
    hits=$(curl -sf "http://127.0.0.1:${!port_var}/metrics" | sed -n 's/.*"peer_hits":\([0-9]*\).*/\1/p')
    peer_hits=$((peer_hits + ${hits:-0}))
done
if [ "$peer_hits" -eq 0 ]; then
    echo "serve-cluster: round-robin run produced zero peer_hits across the fleet" >&2
    exit 1
fi
echo "serve-cluster: fleet peer_hits = $peer_hits"

# --- Gate 3: aggregate throughput scaling. -----------------------------
t_single=$(reqps_of "$tmp/run_single")
t_hash=$(reqps_of "$tmp/run_hash")
cores=$(nproc 2>/dev/null || echo 1)
ratio=$(awk -v a="$t_hash" -v b="$t_single" 'BEGIN { printf "%.2f", (b > 0) ? a/b : 0 }')
echo "serve-cluster: throughput single=$t_single req/s, 3-node=$t_hash req/s, ratio=${ratio}x ($cores cores)"
if [ "$cores" -ge 4 ]; then
    if ! awk -v r="$ratio" 'BEGIN { exit !(r >= 2.0) }'; then
        echo "serve-cluster: 3-node fleet only reached ${ratio}x the single-node throughput (want >= 2x on a >= 4-core host)" >&2
        exit 1
    fi
else
    # Fewer than 4 cores: the three daemons time-share the cores the
    # single daemon had to itself, so near-1x is the expected ceiling.
    echo "serve-cluster: $cores-core host — scaling ratio reported but not enforced (single-core ceiling)"
fi

# --- Gate 4: clean drain of the whole fleet. ---------------------------
for i in 1 2 3; do
    kill -TERM "${pids[$i]}"
done
for i in 1 2 3; do
    if ! wait "${pids[$i]}"; then
        echo "serve-cluster: node $i exited non-zero on SIGTERM; log:" >&2
        cat "$tmp/node$i.log" >&2
        exit 1
    fi
    pids[$i]=""
    grep -q 'drained' "$tmp/node$i.log" || { echo "serve-cluster: node $i never logged its drain" >&2; exit 1; }
done

echo "serve-cluster: ok"
