#!/usr/bin/env bash
# serve-smoke: end-to-end gate for the mapping service. Starts geomapd on
# an ephemeral port, replays the same seeded geoload mix twice, and
# requires (1) byte-identical placement digests across the two runs —
# the determinism contract: same requests + same snapshot must produce
# the same placements whether they are solved or served from cache —
# (2) a fully cache-served second run, and (3) a clean drain on SIGTERM.
set -euo pipefail

cd "$(dirname "$0")/.."
tmp=$(mktemp -d)
daemon_pid=""
cleanup() {
    [ -n "$daemon_pid" ] && kill "$daemon_pid" 2>/dev/null || true
    rm -rf "$tmp"
}
trap cleanup EXIT

go build -o "$tmp" ./cmd/geomapd ./cmd/geoload

"$tmp/geomapd" -addr 127.0.0.1:0 -addr-file "$tmp/addr" 2>"$tmp/daemon.log" &
daemon_pid=$!

for _ in $(seq 1 100); do
    [ -s "$tmp/addr" ] && break
    sleep 0.1
done
if [ ! -s "$tmp/addr" ]; then
    echo "serve-smoke: geomapd never wrote its address; daemon log:" >&2
    cat "$tmp/daemon.log" >&2
    exit 1
fi
addr=$(cat "$tmp/addr")

# Run 1 solves the novel requests; run 2 must answer the identical
# stream entirely from the cache.
"$tmp/geoload" -url "http://$addr" -n 200 -c 8 -seed 7 | tee "$tmp/run1"
"$tmp/geoload" -url "http://$addr" -n 200 -c 8 -seed 7 | tee "$tmp/run2"

d1=$(grep 'placement digest' "$tmp/run1")
d2=$(grep 'placement digest' "$tmp/run2")
if [ "$d1" != "$d2" ]; then
    echo "serve-smoke: placement digests differ between identical seeded runs" >&2
    echo "  run1: $d1" >&2
    echo "  run2: $d2" >&2
    exit 1
fi

if ! grep -q 'cached 200' "$tmp/run2"; then
    echo "serve-smoke: warm run was not fully cache-served:" >&2
    cat "$tmp/run2" >&2
    exit 1
fi

# Graceful drain: SIGTERM must let the daemon exit zero by itself.
kill -TERM "$daemon_pid"
if ! wait "$daemon_pid"; then
    echo "serve-smoke: geomapd exited non-zero on SIGTERM; daemon log:" >&2
    cat "$tmp/daemon.log" >&2
    exit 1
fi
daemon_pid=""

grep 'drained' "$tmp/daemon.log" || true
echo "serve-smoke: ok"
