#!/usr/bin/env bash
# regauge-smoke: end-to-end gate for the closed-loop re-gauging daemon.
# Starts geomapd with the control loop live against the FlakyWAN fault
# preset at a fast timescale, seeds the result cache with geoload, and
# requires (1) at least one automatic snapshot publication by the loop,
# (2) at least one remap suppressed by hysteresis (the drift FlakyWAN
# induces is never worth a migration), (3) the regauge component visible
# and healthy in /healthz, and (4) a clean drain on SIGTERM with the
# loop stopped before the final counters.
set -euo pipefail

cd "$(dirname "$0")/.."
tmp=$(mktemp -d)
daemon_pid=""
cleanup() {
    [ -n "$daemon_pid" ] && kill "$daemon_pid" 2>/dev/null || true
    rm -rf "$tmp"
}
trap cleanup EXIT

go build -o "$tmp" ./cmd/geomapd ./cmd/geoload

# Timescale 60 ticks the 30 s gauge interval every 500 ms of wall time:
# FlakyWAN's fault windows (all within the first 120 schedule seconds)
# and the post-window reversion both drift the model while the cache is
# already populated, so publications walk a real target.
"$tmp/geomapd" -addr 127.0.0.1:0 -addr-file "$tmp/addr" \
    -regauge -faults FlakyWAN -regauge-timescale 60 -workers 2 \
    2>"$tmp/daemon.log" &
daemon_pid=$!

for _ in $(seq 1 100); do
    [ -s "$tmp/addr" ] && break
    sleep 0.1
done
if [ ! -s "$tmp/addr" ]; then
    echo "regauge-smoke: geomapd never wrote its address; daemon log:" >&2
    cat "$tmp/daemon.log" >&2
    exit 1
fi
addr=$(cat "$tmp/addr")

# Populate the result cache immediately so the loop's publications have
# placements to re-evaluate.
"$tmp/geoload" -url "http://$addr" -n 12 -c 4 -app CG -procs 64 -seed 7 >"$tmp/load.log"

# Poll the regauge component until the loop has both published a
# snapshot and suppressed at least one remap by hysteresis.
deadline=$((SECONDS + 60))
published=0
suppressed=0
while [ "$SECONDS" -lt "$deadline" ]; do
    metrics=$(curl -sf "http://$addr/metrics" || true)
    published=$(printf '%s' "$metrics" | python3 -c '
import json, sys
try:
    r = json.load(sys.stdin)["components"]["regauge"]
    print(r["snapshots_published"])
except Exception:
    print(0)
')
    suppressed=$(printf '%s' "$metrics" | python3 -c '
import json, sys
try:
    r = json.load(sys.stdin)["components"]["regauge"]
    print(r["remaps_suppressed_cooldown"] + r["remaps_suppressed_uneconomic"])
except Exception:
    print(0)
')
    [ "$published" -ge 1 ] && [ "$suppressed" -ge 1 ] && break
    sleep 0.5
done
if [ "$published" -lt 1 ] || [ "$suppressed" -lt 1 ]; then
    echo "regauge-smoke: loop never reached published>=1 && suppressed>=1 (got $published/$suppressed); daemon log:" >&2
    cat "$tmp/daemon.log" >&2
    exit 1
fi
echo "regauge-smoke: $published snapshots published, $suppressed remaps suppressed by hysteresis"

# The component must be visible and healthy in /healthz.
if ! curl -sf "http://$addr/healthz" | grep -q '"regauge"'; then
    echo "regauge-smoke: /healthz lacks the regauge component" >&2
    exit 1
fi

# Graceful drain: SIGTERM must stop the loop, then exit zero.
kill -TERM "$daemon_pid"
if ! wait "$daemon_pid"; then
    echo "regauge-smoke: geomapd exited non-zero on SIGTERM; daemon log:" >&2
    cat "$tmp/daemon.log" >&2
    exit 1
fi
daemon_pid=""

if ! grep -q 'regauge: stopped' "$tmp/daemon.log"; then
    echo "regauge-smoke: drain did not stop the re-gauging loop; daemon log:" >&2
    cat "$tmp/daemon.log" >&2
    exit 1
fi
grep 'drained' "$tmp/daemon.log" || true
echo "regauge-smoke: ok"
