#!/usr/bin/env bash
# bench-alloc: zero-allocation gate for the //geolint:allocfree hot paths.
# Runs the BenchmarkAlloc* family with -benchmem across the packages that
# hold annotated roots (core cost/fill/refinement, comm adjacency views,
# stats Scratch estimators, netsim rate solver, multilevel refinement
# proposal sweep), writes the measurements
# to results/BENCH_alloc.json, and fails if any benchmark reports a
# nonzero allocs/op — the dynamic counterpart of the static allocsafe
# rule. ns/op is recorded as informational context only; it is not gated.
set -euo pipefail

cd "$(dirname "$0")/.."
out=${1:-results/BENCH_alloc.json}
tmp=$(mktemp)
trap 'rm -f "$tmp"' EXIT

go test -run '^$' -bench '^BenchmarkAlloc' -benchmem -benchtime 1000x \
    ./internal/core ./internal/comm ./internal/stats ./internal/netsim ./internal/multilevel \
    | tee "$tmp"

# Parse `go test -bench` output lines of the form
#   BenchmarkAllocCost-8   1000   1458 ns/op   0 B/op   0 allocs/op
# into a JSON array, and collect violators.
awk -v out="$out" '
BEGIN { n = 0; bad = "" }
$1 ~ /^BenchmarkAlloc/ && $NF == "allocs/op" {
    name = $1
    sub(/-[0-9]+$/, "", name)
    ns[n] = $3; bytes[n] = $5; allocs[n] = $7; names[n] = name
    if ($7 + 0 != 0) bad = bad " " name
    n++
}
END {
    printf "[\n" > out
    for (i = 0; i < n; i++) {
        printf "  {\"benchmark\": \"%s\", \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}%s\n", \
            names[i], ns[i], bytes[i], allocs[i], (i < n - 1 ? "," : "") > out
    }
    printf "]\n" > out
    if (n == 0) { print "bench-alloc: no BenchmarkAlloc results parsed" > "/dev/stderr"; exit 1 }
    if (bad != "") { print "bench-alloc: nonzero allocs/op in:" bad > "/dev/stderr"; exit 1 }
}
' "$tmp"

echo "bench-alloc: $(grep -c benchmark "$out") benchmarks, all 0 allocs/op -> $out"
