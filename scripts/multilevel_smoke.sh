#!/usr/bin/env bash
# multilevel-smoke: end-to-end gate for the multilevel mapper. Runs the
# mlsmoke experiment — one 16-site, 4096-process instance mapped at
# Workers = 1 and Workers = GOMAXPROCS — under a wall-clock budget. The
# experiment itself fails unless the two placements are byte-identical,
# so a hang, a worker-count-dependent divergence, or an infeasible
# placement all fail this script.
set -euo pipefail

cd "$(dirname "$0")/.."
budget=${MULTILEVEL_SMOKE_BUDGET:-120}

timeout "$budget" go run ./cmd/geobench -exp mlsmoke -out results -json

echo "multilevel-smoke: digest identical across worker counts (budget ${budget}s)"
